//! [`RunManifest`] — the reproducibility record stamped into every
//! `BENCH_*.json`.
//!
//! A perf number without a record of *what ran* is a rumor. The manifest
//! pins the code revision, the deterministic seed, the benchmark's
//! schedule and topology descriptors, the machine the harness ran on,
//! and the estimator/stopping settings the numbers were computed under —
//! enough to re-run the measurement and to notice when two documents are
//! not comparable.

use serde::{Deserialize, Serialize};

/// Version of the BENCH document schema this crate writes. Bump on any
/// field-layout change; the schema gate in CI parses every checked-in
/// document against it.
pub const SCHEMA_VERSION: u32 = 2;

/// Estimator and stopping-rule settings the document's numbers were
/// computed under.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstimatorSettings {
    /// Headline point estimator ("median").
    pub statistic: String,
    /// Interval method ("binomial-order-statistic" or
    /// "percentile-bootstrap").
    pub ci_method: String,
    /// Confidence level of every interval in the document.
    pub confidence: f64,
    /// Adaptive stopping target: relative CI half-width at which
    /// sampling stops.
    pub rel_half_width_target: f64,
    /// Samples always drawn before the first convergence check.
    pub min_reps: u64,
    /// Hard per-measurement rep budget.
    pub max_reps: u64,
    /// How outliers are treated ("flagged at modified z-score > 3.5,
    /// never dropped").
    pub outlier_policy: String,
}

impl EstimatorSettings {
    /// The settings corresponding to an
    /// [`AdaptiveConfig`](crate::AdaptiveConfig) driving
    /// [`measure_adaptive`](crate::measure_adaptive).
    pub fn for_adaptive(cfg: &crate::AdaptiveConfig) -> EstimatorSettings {
        EstimatorSettings {
            statistic: "median".to_string(),
            ci_method: "binomial-order-statistic".to_string(),
            confidence: cfg.confidence,
            rel_half_width_target: cfg.rel_half_width_target,
            min_reps: cfg.min_reps as u64,
            max_reps: cfg.max_reps as u64,
            outlier_policy: "flagged at modified z-score > 3.5, never dropped".to_string(),
        }
    }
}

/// The machine the harness ran on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Operating system (compile-time `std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (compile-time `std::env::consts::ARCH`).
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: u64,
}

impl HostInfo {
    /// Captures the current host.
    pub fn capture() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
        }
    }
}

/// The reproducibility manifest serialized into every BENCH document.
///
/// Serde impls are hand-written (not derived) because
/// [`RunManifest::peak_rss_bytes`] is an *additive optional* field:
/// it is omitted from the serialization when `None` and tolerated when
/// missing on read, so schema-2 documents written before the gauge
/// existed stay byte-identical and parseable. The derive would demand
/// the key's presence.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// BENCH document schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Benchmark identifier (matches the document's `benchmark` key).
    pub benchmark: String,
    /// Git revision of the code that produced the numbers
    /// (`git rev-parse --short=12 HEAD`, or "unknown" outside a work
    /// tree).
    pub git_rev: String,
    /// Deterministic seed every simulated measurement derives from.
    pub seed: u64,
    /// Measurement-schedule descriptor (e.g.
    /// "ProfilingConfig::default (paper §IV-A)").
    pub schedule: String,
    /// Topology/machine-model descriptor (e.g. "P/8 dual quad-core
    /// nodes, round-robin mapping").
    pub topology: String,
    /// Host the harness process ran on.
    pub host: HostInfo,
    /// Exact command line of the run.
    pub command_line: Vec<String>,
    /// Estimator and stopping settings.
    pub estimator: EstimatorSettings,
    /// Peak resident set size of the harness process in bytes
    /// ([`peak_rss_bytes`]), read at capture time — the bins capture
    /// their manifest after the workload, so this gauges the whole run.
    /// `None` on platforms without a gauge and in documents written
    /// before the field existed.
    pub peak_rss_bytes: Option<u64>,
}

impl Serialize for RunManifest {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("benchmark".to_string(), self.benchmark.to_value()),
            ("git_rev".to_string(), self.git_rev.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("schedule".to_string(), self.schedule.to_value()),
            ("topology".to_string(), self.topology.to_value()),
            ("host".to_string(), self.host.to_value()),
            ("command_line".to_string(), self.command_line.to_value()),
            ("estimator".to_string(), self.estimator.to_value()),
        ];
        if let Some(peak) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes".to_string(), peak.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for RunManifest {
    fn from_value(value: &serde::Value) -> Result<Self, String> {
        let field = |key: &str| serde::__field(value, key, "RunManifest");
        let peak_rss_bytes = match value.get("peak_rss_bytes") {
            None | Some(serde::Value::Null) => None,
            Some(v) => {
                Some(u64::from_value(v).map_err(|e| format!("RunManifest.peak_rss_bytes: {e}"))?)
            }
        };
        Ok(RunManifest {
            schema_version: u32::from_value(field("schema_version")?)?,
            benchmark: String::from_value(field("benchmark")?)?,
            git_rev: String::from_value(field("git_rev")?)?,
            seed: u64::from_value(field("seed")?)?,
            schedule: String::from_value(field("schedule")?)?,
            topology: String::from_value(field("topology")?)?,
            host: HostInfo::from_value(field("host")?)?,
            command_line: Vec::<String>::from_value(field("command_line")?)?,
            estimator: EstimatorSettings::from_value(field("estimator")?)?,
            peak_rss_bytes,
        })
    }
}

impl RunManifest {
    /// Builds a manifest for `benchmark`, capturing git revision, host,
    /// command line, and peak RSS from the environment.
    pub fn capture(
        benchmark: &str,
        seed: u64,
        schedule: &str,
        topology: &str,
        estimator: EstimatorSettings,
    ) -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            benchmark: benchmark.to_string(),
            git_rev: git_rev(),
            seed,
            schedule: schedule.to_string(),
            topology: topology.to_string(),
            host: HostInfo::capture(),
            command_line: std::env::args().collect(),
            estimator,
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// The process's high-water resident set size in bytes — `VmHWM` from
/// `/proc/self/status` on Linux, `None` where no portable gauge exists.
/// This is the kernel's own account of the worst moment of the run,
/// which is what a memory-ceiling claim must be judged against (any
/// instantaneous sampling can miss the peak).
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
                return Some(kib * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// The working tree's short revision, or "unknown" when git is absent
/// (e.g. a source tarball).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_environment_fields() {
        let m = RunManifest::capture(
            "unit",
            42,
            "fast",
            "2x2x4",
            EstimatorSettings::for_adaptive(&crate::AdaptiveConfig::default()),
        );
        assert_eq!(m.schema_version, SCHEMA_VERSION);
        assert!(!m.git_rev.is_empty());
        assert!(!m.command_line.is_empty());
        assert_eq!(m.host.os, std::env::consts::OS);
        if cfg!(target_os = "linux") {
            assert!(m.peak_rss_bytes.is_some(), "VmHWM must gauge on linux");
        }
    }

    #[test]
    fn peak_rss_gauge_is_sane_on_linux() {
        let Some(peak) = peak_rss_bytes() else {
            assert!(
                std::env::consts::OS != "linux",
                "VmHWM must gauge on linux"
            );
            return;
        };
        // A running test process has touched at least a few hundred KiB
        // and (here) far less than a terabyte; the gauge is monotone.
        assert!(peak > 64 * 1024, "peak {peak} implausibly small");
        assert!(peak < 1 << 40, "peak {peak} implausibly large");
        let _ballast = vec![7u8; 4 << 20];
        let after = peak_rss_bytes().expect("still linux");
        assert!(after >= peak, "VmHWM went backwards: {peak} -> {after}");
    }
}
