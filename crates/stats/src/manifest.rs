//! [`RunManifest`] — the reproducibility record stamped into every
//! `BENCH_*.json`.
//!
//! A perf number without a record of *what ran* is a rumor. The manifest
//! pins the code revision, the deterministic seed, the benchmark's
//! schedule and topology descriptors, the machine the harness ran on,
//! and the estimator/stopping settings the numbers were computed under —
//! enough to re-run the measurement and to notice when two documents are
//! not comparable.

use serde::{Deserialize, Serialize};

/// Version of the BENCH document schema this crate writes. Bump on any
/// field-layout change; the schema gate in CI parses every checked-in
/// document against it.
pub const SCHEMA_VERSION: u32 = 2;

/// Estimator and stopping-rule settings the document's numbers were
/// computed under.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstimatorSettings {
    /// Headline point estimator ("median").
    pub statistic: String,
    /// Interval method ("binomial-order-statistic" or
    /// "percentile-bootstrap").
    pub ci_method: String,
    /// Confidence level of every interval in the document.
    pub confidence: f64,
    /// Adaptive stopping target: relative CI half-width at which
    /// sampling stops.
    pub rel_half_width_target: f64,
    /// Samples always drawn before the first convergence check.
    pub min_reps: u64,
    /// Hard per-measurement rep budget.
    pub max_reps: u64,
    /// How outliers are treated ("flagged at modified z-score > 3.5,
    /// never dropped").
    pub outlier_policy: String,
}

impl EstimatorSettings {
    /// The settings corresponding to an
    /// [`AdaptiveConfig`](crate::AdaptiveConfig) driving
    /// [`measure_adaptive`](crate::measure_adaptive).
    pub fn for_adaptive(cfg: &crate::AdaptiveConfig) -> EstimatorSettings {
        EstimatorSettings {
            statistic: "median".to_string(),
            ci_method: "binomial-order-statistic".to_string(),
            confidence: cfg.confidence,
            rel_half_width_target: cfg.rel_half_width_target,
            min_reps: cfg.min_reps as u64,
            max_reps: cfg.max_reps as u64,
            outlier_policy: "flagged at modified z-score > 3.5, never dropped".to_string(),
        }
    }
}

/// The machine the harness ran on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Operating system (compile-time `std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (compile-time `std::env::consts::ARCH`).
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: u64,
}

impl HostInfo {
    /// Captures the current host.
    pub fn capture() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
        }
    }
}

/// The reproducibility manifest serialized into every BENCH document.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// BENCH document schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Benchmark identifier (matches the document's `benchmark` key).
    pub benchmark: String,
    /// Git revision of the code that produced the numbers
    /// (`git rev-parse --short=12 HEAD`, or "unknown" outside a work
    /// tree).
    pub git_rev: String,
    /// Deterministic seed every simulated measurement derives from.
    pub seed: u64,
    /// Measurement-schedule descriptor (e.g.
    /// "ProfilingConfig::default (paper §IV-A)").
    pub schedule: String,
    /// Topology/machine-model descriptor (e.g. "P/8 dual quad-core
    /// nodes, round-robin mapping").
    pub topology: String,
    /// Host the harness process ran on.
    pub host: HostInfo,
    /// Exact command line of the run.
    pub command_line: Vec<String>,
    /// Estimator and stopping settings.
    pub estimator: EstimatorSettings,
}

impl RunManifest {
    /// Builds a manifest for `benchmark`, capturing git revision, host,
    /// and command line from the environment.
    pub fn capture(
        benchmark: &str,
        seed: u64,
        schedule: &str,
        topology: &str,
        estimator: EstimatorSettings,
    ) -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            benchmark: benchmark.to_string(),
            git_rev: git_rev(),
            seed,
            schedule: schedule.to_string(),
            topology: topology.to_string(),
            host: HostInfo::capture(),
            command_line: std::env::args().collect(),
            estimator,
        }
    }
}

/// The working tree's short revision, or "unknown" when git is absent
/// (e.g. a source tarball).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_environment_fields() {
        let m = RunManifest::capture(
            "unit",
            42,
            "fast",
            "2x2x4",
            EstimatorSettings::for_adaptive(&crate::AdaptiveConfig::default()),
        );
        assert_eq!(m.schema_version, SCHEMA_VERSION);
        assert!(!m.git_rev.is_empty());
        assert!(!m.command_line.is_empty());
        assert_eq!(m.host.os, std::env::consts::OS);
    }
}
