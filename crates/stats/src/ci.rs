//! Confidence intervals: nonparametric order-statistic CIs for the
//! median, and deterministic-seeded percentile bootstrap CIs for
//! arbitrary estimators.

use crate::estimators::sorted;
use serde::{Deserialize, Serialize};

/// A two-sided interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Half the interval width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Half-width relative to `|center|` (ε-guarded like the sweep's
    /// relative spread, so a zero center cannot divide by zero).
    pub fn rel_half_width(&self, center: f64) -> f64 {
        self.half_width() / center.abs().max(1e-300)
    }
}

/// Order-statistic indices (0-based, inclusive) of the distribution-free
/// median CI at `confidence` for a sample of size `n`: the interval
/// `[x_(lo), x_(hi)]` of the sorted sample has coverage ≥ `confidence`
/// under `X ~ Binomial(n, ½)` counting samples below the true median.
///
/// When even the extreme order statistics cannot reach the requested
/// coverage (tiny `n`: the full range `[x_(0), x_(n−1)]` has coverage
/// `1 − 2^(1−n)`), the full range is returned — conservative, and the
/// caller can detect it via `lo == 0`.
///
/// # Panics
/// Panics if `n == 0` or `confidence ∉ (0, 1)`.
pub fn median_ci_indices(n: usize, confidence: f64) -> (usize, usize) {
    assert!(n > 0, "median CI of an empty sample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence {confidence} outside (0, 1)"
    );
    let alpha = 1.0 - confidence;
    // Largest r ≥ 1 with P(X ≤ r−1) ≤ α/2 under Binomial(n, ½); the CI
    // is then [x_(r), x_(n+1−r)] in 1-based order statistics. The pmf is
    // walked iteratively: p(0) = 2^−n, p(i+1) = p(i)·(n−i)/(i+1).
    let mut r = 0usize;
    let mut pmf = 0.5f64.powi(i32::try_from(n).expect("sample size fits i32"));
    let mut cdf = 0.0f64;
    for i in 0..n {
        cdf += pmf; // P(X ≤ i)
        if cdf <= alpha / 2.0 {
            r = i + 1;
        } else {
            break;
        }
        pmf = pmf * (n - i) as f64 / (i + 1) as f64;
    }
    if r == 0 {
        (0, n - 1)
    } else {
        (r - 1, n - r)
    }
}

/// Distribution-free CI for the median of `xs` (see
/// [`median_ci_indices`]). Sorts internally; any sample order is fine.
///
/// # Panics
/// Panics on an empty slice, NaN samples, or `confidence ∉ (0, 1)`.
pub fn median_ci(xs: &[f64], confidence: f64) -> Interval {
    let v = sorted(xs);
    let (lo, hi) = median_ci_indices(v.len(), confidence);
    Interval {
        lo: v[lo],
        hi: v[hi],
    }
}

/// SplitMix64 step — the crate's only randomness, deterministic from the
/// seed so every bootstrap interval is exactly reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Percentile-bootstrap CI for `estimator` over `xs`: `resamples`
/// with-replacement resamples are drawn with a SplitMix64 stream seeded
/// by `seed`, the estimator is applied to each, and the empirical
/// `α/2` / `1 − α/2` quantiles of the resampled estimates bound the
/// interval. Deterministic for fixed inputs.
///
/// # Panics
/// Panics on an empty slice, `resamples == 0`, or
/// `confidence ∉ (0, 1)`.
pub fn bootstrap_ci(
    xs: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
    estimator: fn(&[f64]) -> f64,
) -> Interval {
    assert!(!xs.is_empty(), "bootstrap over an empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence {confidence} outside (0, 1)"
    );
    let n = xs.len();
    let mut state = seed;
    let mut resample = vec![0.0f64; n];
    let mut estimates = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in &mut resample {
            // Modulo bias is ≤ n/2^64 — immaterial against bootstrap noise.
            *slot = xs[(splitmix64(&mut state) % n as u64) as usize];
        }
        estimates.push(estimator(&resample));
    }
    estimates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite estimate"));
    let alpha = 1.0 - confidence;
    let b = estimates.len();
    let lo_idx = ((alpha / 2.0) * b as f64).floor() as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * b as f64).ceil() as usize)
        .saturating_sub(1)
        .min(b - 1);
    Interval {
        lo: estimates[lo_idx],
        hi: estimates[hi_idx.max(lo_idx)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::median;

    #[test]
    fn tiny_samples_fall_back_to_full_range() {
        for n in 1..=5 {
            assert_eq!(median_ci_indices(n, 0.95), (0, n - 1));
        }
    }

    #[test]
    fn indices_are_symmetric_and_tighten_with_n() {
        let (lo8, hi8) = median_ci_indices(8, 0.95);
        assert_eq!(lo8 + (8 - 1 - hi8), 2 * lo8, "symmetric trim");
        let (lo100, hi100) = median_ci_indices(100, 0.95);
        assert!(lo100 > lo8);
        assert!(100 - hi100 < 100 / 2);
        // Known textbook value: n = 100, 95% → r = 40 (1-based), so
        // 0-based (39, 60).
        assert_eq!((lo100, hi100), (39, 60));
    }

    #[test]
    fn median_ci_brackets_the_sample_median() {
        let xs: Vec<f64> = (0..41).map(f64::from).collect();
        let iv = median_ci(&xs, 0.95);
        let m = median(&xs);
        assert!(iv.lo <= m && m <= iv.hi);
        assert!(iv.lo > 0.0 && iv.hi < 40.0, "interval should be interior");
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets() {
        let xs: Vec<f64> = (0..25).map(|i| f64::from(i % 7) + 3.0).collect();
        let a = bootstrap_ci(&xs, 0.95, 500, 42, median);
        let b = bootstrap_ci(&xs, 0.95, 500, 42, median);
        assert_eq!(a, b, "same seed, same interval");
        let m = median(&xs);
        assert!(a.lo <= m && m <= a.hi);
    }
}
