//! Golden-file schema tests for the BENCH document types.
//!
//! Three promises, each pinned here so a drive-by field rename or
//! reorder fails a test instead of silently invalidating every
//! checked-in `BENCH_*.json`:
//!
//! 1. **Stable field order** — serialization emits fields in
//!    declaration order, byte-for-byte equal to the golden strings
//!    below (bump [`SCHEMA_VERSION`] when a golden legitimately
//!    changes).
//! 2. **Round-trip fidelity** — `from_value(to_value(x)) == x` for
//!    [`RunManifest`] and [`Estimate`], through JSON text as well.
//! 3. **Unknown-field tolerance** — documents written by a *newer*
//!    schema (extra fields) still parse; documents missing required
//!    fields fail loudly with the field name.

use hbar_stats::{Estimate, EstimatorSettings, HostInfo, RunManifest, SCHEMA_VERSION};
use serde::{Deserialize, Serialize, Value};

/// A fully deterministic manifest (no environment capture).
fn fixture_manifest() -> RunManifest {
    RunManifest {
        schema_version: SCHEMA_VERSION,
        benchmark: "unit_fixture".to_string(),
        git_rev: "abcdef123456".to_string(),
        seed: 42,
        schedule: "ProfilingConfig::default (paper §IV-A)".to_string(),
        topology: "dual quad-core nodes (P/8), round-robin placement".to_string(),
        host: HostInfo {
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            logical_cpus: 8,
        },
        command_line: vec![
            "tuner-perf".to_string(),
            "--reps".to_string(),
            "40".to_string(),
        ],
        estimator: EstimatorSettings {
            statistic: "median".to_string(),
            ci_method: "binomial-order-statistic".to_string(),
            confidence: 0.95,
            rel_half_width_target: 0.05,
            min_reps: 10,
            max_reps: 40,
            outlier_policy: "flagged at modified z-score > 3.5, never dropped".to_string(),
        },
        peak_rss_bytes: None,
    }
}

fn fixture_estimate() -> Estimate {
    Estimate::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95, 0.05)
}

const GOLDEN_MANIFEST: &str = r#"{
  "schema_version": 2,
  "benchmark": "unit_fixture",
  "git_rev": "abcdef123456",
  "seed": 42,
  "schedule": "ProfilingConfig::default (paper §IV-A)",
  "topology": "dual quad-core nodes (P/8), round-robin placement",
  "host": {
    "os": "linux",
    "arch": "x86_64",
    "logical_cpus": 8
  },
  "command_line": [
    "tuner-perf",
    "--reps",
    "40"
  ],
  "estimator": {
    "statistic": "median",
    "ci_method": "binomial-order-statistic",
    "confidence": 0.95,
    "rel_half_width_target": 0.05,
    "min_reps": 10,
    "max_reps": 40,
    "outlier_policy": "flagged at modified z-score > 3.5, never dropped"
  }
}"#;

const GOLDEN_ESTIMATE: &str = r#"{
  "n": 5,
  "median": 3.0,
  "ci_lo": 1.0,
  "ci_hi": 5.0,
  "confidence": 0.95,
  "rel_half_width": 0.6666666666666666,
  "trimmed_mean": 3.0,
  "mad": 1.0,
  "min": 1.0,
  "max": 5.0,
  "outliers": 0,
  "converged": false
}"#;

#[test]
fn manifest_serializes_to_the_golden_string() {
    let json = serde_json::to_string_pretty(&fixture_manifest()).expect("serialize");
    // `to_string_pretty` ends documents with a newline.
    assert_eq!(
        json,
        format!("{GOLDEN_MANIFEST}\n"),
        "manifest field order or formatting drifted; if intentional, bump SCHEMA_VERSION \
         and regenerate every BENCH_*.json"
    );
}

#[test]
fn peak_rss_is_additive_and_optional() {
    // Absent `peak_rss_bytes` (every pre-gauge document) parses as None
    // and serializes back without the key — the golden above covers the
    // byte-stability half. Present, it round-trips and lands last.
    let mut m = fixture_manifest();
    m.peak_rss_bytes = Some(1_073_741_824);
    let text = serde_json::to_string_pretty(&m).expect("serialize");
    assert!(
        text.contains("\"peak_rss_bytes\": 1073741824"),
        "gauge missing from serialization: {text}"
    );
    let parsed: Value = serde_json::from_str(&text).expect("parse");
    let back = RunManifest::from_value(&parsed).expect("round-trip");
    assert_eq!(back, m);
    // An explicit null also reads as None (a writer that serialized the
    // Option directly rather than omitting it).
    let mut parsed: Value = serde_json::from_str(GOLDEN_MANIFEST).expect("parse");
    if let Value::Object(entries) = &mut parsed {
        entries.push(("peak_rss_bytes".to_string(), Value::Null));
    }
    let back = RunManifest::from_value(&parsed).expect("null tolerated");
    assert_eq!(back, fixture_manifest());
}

#[test]
fn estimate_serializes_to_the_golden_string() {
    let json = serde_json::to_string_pretty(&fixture_estimate()).expect("serialize");
    assert_eq!(
        json,
        format!("{GOLDEN_ESTIMATE}\n"),
        "Estimate field order or formatting drifted; if intentional, bump SCHEMA_VERSION \
         and regenerate every BENCH_*.json"
    );
}

#[test]
fn manifest_round_trips_through_value_and_text() {
    let m = fixture_manifest();
    let via_value = RunManifest::from_value(&m.to_value()).expect("value round-trip");
    assert_eq!(via_value, m);
    let text = serde_json::to_string(&m).expect("serialize");
    let parsed: Value = serde_json::from_str(&text).expect("parse");
    let via_text = RunManifest::from_value(&parsed).expect("text round-trip");
    assert_eq!(via_text, m);
}

#[test]
fn estimate_round_trips_through_value_and_text() {
    let e = fixture_estimate();
    let via_value = Estimate::from_value(&e.to_value()).expect("value round-trip");
    assert_eq!(via_value, e);
    let text = serde_json::to_string_pretty(&e).expect("serialize");
    let parsed: Value = serde_json::from_str(&text).expect("parse");
    let via_text = Estimate::from_value(&parsed).expect("text round-trip");
    assert_eq!(via_text, e);
}

#[test]
fn unknown_fields_are_tolerated() {
    // A document written by a future schema version: every object level
    // carries an extra field. Deserialization must skip them.
    let mut parsed: Value = serde_json::from_str(GOLDEN_MANIFEST).expect("parse");
    if let Value::Object(entries) = &mut parsed {
        entries.push((
            "future_field".to_string(),
            Value::Str("from a newer writer".to_string()),
        ));
        for (key, value) in entries.iter_mut() {
            if key == "host" || key == "estimator" {
                if let Value::Object(inner) = value {
                    inner.push(("also_new".to_string(), Value::UInt(1)));
                }
            }
        }
    } else {
        panic!("golden manifest is not an object");
    }
    let m = RunManifest::from_value(&parsed).expect("unknown fields must be tolerated");
    assert_eq!(m, fixture_manifest());
}

#[test]
fn missing_required_fields_fail_with_the_field_name() {
    let mut parsed: Value = serde_json::from_str(GOLDEN_MANIFEST).expect("parse");
    if let Value::Object(entries) = &mut parsed {
        entries.retain(|(k, _)| k != "git_rev");
    }
    let err = RunManifest::from_value(&parsed).expect_err("missing field must fail");
    assert!(err.contains("git_rev"), "unhelpful error: {err}");
}

#[test]
fn schema_version_constant_matches_the_golden() {
    // The golden string hard-codes the version; this cross-check makes
    // a version bump touch both in the same commit.
    let parsed: Value = serde_json::from_str(GOLDEN_MANIFEST).expect("parse");
    let golden_version = match parsed.get("schema_version") {
        Some(Value::UInt(v)) => *v,
        other => panic!("golden schema_version missing or mistyped: {other:?}"),
    };
    assert_eq!(golden_version, u64::from(SCHEMA_VERSION));
}
