//! Property tests for the measurement core: estimator closed forms on
//! symmetric fixtures, CI coverage at (about) the nominal rate on known
//! distributions, outlier-flagging behavior, and adaptive-stopping
//! termination within budget.
//!
//! Everything here is deterministic — samples are drawn from seeded
//! `SmallRng` streams (and the proptest shim itself seeds per test
//! name) — so coverage counts are exact across runs, not flaky
//! statistics.

use hbar_stats::{
    bootstrap_ci, flag_outliers, mad, measure_adaptive, median, median_ci, outlier_count,
    rel_spread, trimmed_mean, AdaptiveConfig, StoppingRule, DEFAULT_OUTLIER_THRESHOLD,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const EPS: f64 = 1e-9;

/// Uniform(0, 1) samples from a seeded stream. True median: 0.5.
fn uniform_samples(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>()).collect()
}

/// Exp(1) samples via inverse CDF. True median: ln 2.
fn exponential_samples(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| -(1.0 - rng.random::<f64>()).ln()).collect()
}

/// Coverage rate of `ci_of` over `trials` independent seeded draws of
/// `n` samples: the fraction of trials whose interval contains
/// `true_median`.
fn coverage(
    trials: u64,
    n: usize,
    true_median: f64,
    draw: impl Fn(u64, usize) -> Vec<f64>,
    ci_of: impl Fn(&[f64]) -> hbar_stats::Interval,
) -> f64 {
    let mut hits = 0usize;
    for trial in 0..trials {
        let xs = draw(0x5eed_0000 + trial, n);
        let iv = ci_of(&xs);
        if iv.lo <= true_median && true_median <= iv.hi {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

// --- CI coverage at (about) the nominal rate -------------------------

#[test]
fn median_ci_covers_uniform_median_at_nominal_rate() {
    // The binomial order-statistic CI is conservative by construction
    // (discrete coverage ≥ nominal), so the observed rate over 400
    // seeded trials must sit at or above ~95% minus sampling slack.
    let rate = coverage(400, 41, 0.5, uniform_samples, |xs| median_ci(xs, 0.95));
    assert!(
        (0.93..=1.0).contains(&rate),
        "95% CI covered the uniform median in {rate} of trials"
    );
}

#[test]
fn median_ci_covers_exponential_median_at_nominal_rate() {
    // Same check on a skewed distribution: order-statistic intervals
    // are distribution-free, so skew must not dent coverage.
    let rate = coverage(400, 41, std::f64::consts::LN_2, exponential_samples, |xs| {
        median_ci(xs, 0.95)
    });
    assert!(
        (0.93..=1.0).contains(&rate),
        "95% CI covered the exponential median in {rate} of trials"
    );
}

#[test]
fn lower_confidence_gives_narrower_intervals_and_lower_coverage() {
    let rate80 = coverage(400, 41, 0.5, uniform_samples, |xs| median_ci(xs, 0.80));
    let rate95 = coverage(400, 41, 0.5, uniform_samples, |xs| median_ci(xs, 0.95));
    assert!(
        rate80 < rate95,
        "80% coverage {rate80} not below 95% coverage {rate95}"
    );
    assert!((0.78..0.97).contains(&rate80), "80% CI covered {rate80}");
    for trial in 0..50 {
        let xs = uniform_samples(trial, 41);
        let narrow = median_ci(&xs, 0.80);
        let wide = median_ci(&xs, 0.95);
        assert!(wide.lo <= narrow.lo && narrow.hi <= wide.hi);
    }
}

#[test]
fn bootstrap_ci_covers_the_median_near_nominal_rate() {
    // The percentile bootstrap is only asymptotically calibrated, so
    // the bound is looser than the order-statistic one — but it must
    // still land in the right neighborhood, not at 50% or 100%-vacuous.
    let rate = coverage(300, 41, 0.5, uniform_samples, |xs| {
        bootstrap_ci(xs, 0.95, 200, 7, median)
    });
    assert!(
        (0.88..=1.0).contains(&rate),
        "bootstrap 95% CI covered the uniform median in {rate} of trials"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Closed forms on symmetric fixtures --------------------------

    /// A sample mirrored around `c` has median, trimmed mean, and mean
    /// all equal to `c`, and trimming never moves the estimate off the
    /// center of symmetry.
    fn symmetric_samples_pin_the_center(
        half in prop::collection::vec(0.0f64..100.0, 1..40),
        c in -50.0f64..50.0,
        odd in any::<bool>(),
    ) {
        let mut xs: Vec<f64> = Vec::new();
        for &d in &half {
            xs.push(c - d);
            xs.push(c + d);
        }
        if odd {
            xs.push(c);
        }
        prop_assert!((median(&xs) - c).abs() <= EPS.max(c.abs() * EPS));
        let tol = 1e-6 * (1.0 + c.abs() + 100.0);
        prop_assert!((trimmed_mean(&xs, 0.1) - c).abs() <= tol);
        prop_assert!((trimmed_mean(&xs, 0.25) - c).abs() <= tol);
    }

    /// MAD is translation-invariant and absolutely homogeneous:
    /// mad(a·x + b) = |a|·mad(x).
    fn mad_is_translation_invariant_and_homogeneous(
        xs in prop::collection::vec(-100.0f64..100.0, 2..30),
        a in -4.0f64..4.0,
        b in -100.0f64..100.0,
    ) {
        let base = mad(&xs);
        let mapped: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let tol = 1e-9 * (1.0 + a.abs()) * (1.0 + base);
        prop_assert!((mad(&mapped) - a.abs() * base).abs() <= tol.max(1e-9));
    }

    /// Trimming at 10% per side drops exactly ⌊n/10⌋ smallest and
    /// largest samples: an extreme value beyond the trim points never
    /// moves the trimmed mean, however large it is.
    fn trimmed_mean_ignores_a_far_outlier(
        mut xs in prop::collection::vec(10.0f64..20.0, 10..40),
        spike in 1.0e3f64..1.0e9,
    ) {
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let clean = trimmed_mean(&xs, 0.1);
        let last = xs.len() - 1;
        xs[last] = spike;
        let spiked = trimmed_mean(&xs, 0.1);
        prop_assert!(
            (clean - spiked).abs() <= 20.0,
            "trimmed mean moved from {clean} to {spiked} on a {spike} outlier"
        );
        prop_assert!(spiked <= 20.0, "outlier leaked into the trimmed mean: {spiked}");
    }

    // --- Interval and estimator structural invariants ----------------

    /// The median CI endpoints are order statistics of the sample and
    /// bracket the median, at every n and confidence.
    fn median_ci_brackets_the_median_with_sample_endpoints(
        xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..80),
        confidence in 0.5f64..0.999,
    ) {
        let iv = median_ci(&xs, confidence);
        let m = median(&xs);
        prop_assert!(iv.lo <= m && m <= iv.hi);
        prop_assert!(xs.contains(&iv.lo), "lo {} not a sample", iv.lo);
        prop_assert!(xs.contains(&iv.hi), "hi {} not a sample", iv.hi);
    }

    /// One spike far outside a tight cluster is always flagged (a
    /// cluster point may be too when the cluster's own MAD is tiny —
    /// the rule is scale-relative), and flagging never drops anything:
    /// the flag vector keeps the sample length.
    fn single_far_spike_is_flagged(
        mut xs in prop::collection::vec(100.0f64..101.0, 6..30),
        spike in 1.0e4f64..1.0e8,
        pos in any::<usize>(),
    ) {
        let at = pos % xs.len();
        xs[at] = spike;
        let flags = flag_outliers(&xs, DEFAULT_OUTLIER_THRESHOLD);
        prop_assert_eq!(flags.len(), xs.len());
        prop_assert!(flags[at], "spike at {} not flagged", at);
        prop_assert!(outlier_count(&xs) >= 1);
    }

    /// Identical samples have zero spread and no flagged outliers, and
    /// the stopping rule never asks for more of them.
    fn constant_samples_are_converged(
        x in 0.1f64..1.0e6,
        n in 2usize..40,
    ) {
        let xs = vec![x; n];
        prop_assert_eq!(rel_spread(&xs), 0.0);
        prop_assert_eq!(outlier_count(&xs), 0);
        let rule = StoppingRule { rel_tol: 0.05, max_rounds: 8 };
        prop_assert!(!rule.should_grow(rel_spread(&xs)));
    }

    // --- Adaptive stopping terminates within budget ------------------

    /// Whatever the sampler returns (here: seeded jitter around a
    /// center, worst cases included), `measure_adaptive` terminates
    /// with min_reps ≤ n ≤ max_reps and an internally consistent
    /// estimate.
    fn adaptive_stopping_respects_the_budget(
        seed in any::<u64>(),
        center in 1.0f64..100.0,
        jitter in 0.0f64..2.0,
        min_reps in 1usize..20,
        extra in 0usize..60,
    ) {
        let max_reps = min_reps + extra;
        let cfg = AdaptiveConfig::with_budget(min_reps, max_reps);
        let mut rng = SmallRng::seed_from_u64(seed);
        let est = measure_adaptive(&cfg, || {
            center * (1.0 + jitter * (rng.random::<f64>() - 0.5))
        });
        prop_assert!(est.n >= min_reps.min(max_reps));
        prop_assert!(est.n <= max_reps.max(1));
        prop_assert!(est.ci_lo <= est.median && est.median <= est.ci_hi);
        prop_assert!(est.min <= est.median && est.median <= est.max);
        if est.converged {
            prop_assert!(est.rel_half_width <= cfg.rel_half_width_target);
        } else {
            prop_assert_eq!(est.n, max_reps.max(1));
        }
    }

    /// A noiseless sampler converges at the floor: exactly min_reps
    /// samples, converged, zero-width interval.
    fn noiseless_sampler_stops_at_the_floor(
        value in 0.1f64..1.0e3,
        min_reps in 1usize..15,
    ) {
        let cfg = AdaptiveConfig::with_budget(min_reps, min_reps + 50);
        let est = measure_adaptive(&cfg, || value);
        prop_assert_eq!(est.n, min_reps);
        prop_assert!(est.converged);
        prop_assert_eq!(est.ci_lo, est.ci_hi);
    }

    /// The sweep stopping rule grows exactly while the spread exceeds
    /// the tolerance, and `round_allowed` caps the growth rounds.
    fn stopping_rule_matches_its_definition(
        rel_tol in 0.0f64..1.0,
        spread in 0.0f64..2.0,
        max_rounds in 0u32..10,
    ) {
        let rule = StoppingRule { rel_tol, max_rounds };
        prop_assert_eq!(rule.should_grow(spread), spread > rel_tol);
        prop_assert!(rule.round_allowed(max_rounds));
        prop_assert!(!rule.round_allowed(max_rounds + 1));
    }
}
