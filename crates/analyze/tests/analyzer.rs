//! Library-wide analyzer properties and mutation coverage.
//!
//! Three guarantees pinned here:
//! 1. every library algorithm and both paper-topology tuned hybrids
//!    analyze clean under the *full* pass set (issue acceptance),
//! 2. mutants — any single dropped signal, any flipped stage mode — are
//!    always reported (with a first-principles knowledge-trace oracle
//!    deciding which code must fire),
//! 3. the one true positive in the wider library (n-way dissemination's
//!    wrap redundancy) keeps being found.

use hbar_analyze::{analyze_schedule, AnalyzeConfig, Code};
use hbar_core::algorithms::Algorithm;
use hbar_core::compose::{tune_hybrid_for, TunerConfig};
use hbar_core::schedule::{BarrierSchedule, Stage};
use hbar_core::verify;
use hbar_topo::cost::SendMode;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;

fn full_schedule(alg: Algorithm, p: usize) -> BarrierSchedule {
    let members: Vec<usize> = (0..p).collect();
    alg.full_schedule(p, &members)
}

/// The satellite-task property: linear, dissemination, butterfly and tree
/// analyze clean at every applicable P in 2..=64, all passes on.
#[test]
fn library_algorithms_analyze_clean_up_to_64() {
    let cfg = AnalyzeConfig::default();
    let mut analyzed = 0usize;
    for alg in [
        Algorithm::Linear,
        Algorithm::Dissemination,
        Algorithm::Butterfly,
        Algorithm::Tree,
    ] {
        for p in 2..=64 {
            if !alg.applicable(p) {
                continue;
            }
            let report = analyze_schedule(&full_schedule(alg, p), &cfg);
            assert!(report.is_clean(), "{alg} p={p}:\n{report}");
            analyzed += 1;
        }
    }
    assert!(analyzed > 130, "swept {analyzed} schedules");
}

/// Tuned hybrids over both of the paper's evaluation topologies are clean
/// under the full pass set, including codegen round-trips.
#[test]
fn tuned_paper_topologies_analyze_clean() {
    for (machine, p) in [
        (MachineSpec::dual_quad_cluster(8), 64),
        (MachineSpec::dual_hex_cluster(10), 120),
    ] {
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();
        let tuned = tune_hybrid_for(&profile, &members, &TunerConfig::default());
        let report = analyze_schedule(&tuned.schedule, &AnalyzeConfig::default());
        assert!(report.is_clean(), "p={p}:\n{report}");
    }
}

/// Rebuilds `schedule` with one signal removed.
fn drop_signal(schedule: &BarrierSchedule, stage: usize, edge: (usize, usize)) -> BarrierSchedule {
    let mut out = BarrierSchedule::new(schedule.n());
    for (si, s) in schedule.stages().iter().enumerate() {
        let mut m = s.matrix.clone();
        if si == stage {
            m.set(edge.0, edge.1, false);
        }
        out.push(Stage {
            matrix: m,
            mode: s.mode,
        });
    }
    out
}

/// Every single-signal-dropped mutant of every library schedule is
/// reported: either the mutant no longer synchronizes (A005) or the
/// dropped signal was load-bearing for someone else's redundancy and a
/// dead signal remains — never silence.
#[test]
fn dropped_signal_mutants_are_always_flagged() {
    // Dead-signal + closure passes only: mutation coverage needs the
    // schedule-level verdicts, not emitters.
    let cfg = AnalyzeConfig {
        progress: false,
        roundtrip: false,
        ..AnalyzeConfig::default()
    };
    let mut mutants = 0usize;
    for alg in [
        Algorithm::Linear,
        Algorithm::Dissemination,
        Algorithm::Butterfly,
        Algorithm::Tree,
    ] {
        for p in [3usize, 4, 6, 8, 13] {
            if !alg.applicable(p) {
                continue;
            }
            let schedule = full_schedule(alg, p);
            for si in 0..schedule.len() {
                let edges: Vec<(usize, usize)> = schedule.stages()[si].matrix.edges().collect();
                for edge in edges {
                    let mutant = drop_signal(&schedule, si, edge);
                    let report = analyze_schedule(&mutant, &cfg);
                    assert!(
                        report.has_code(Code::NonBarrier) || report.has_code(Code::DeadSignal),
                        "{alg} p={p} drop stage {si} {edge:?} went unflagged:\n{report}"
                    );
                    mutants += 1;
                }
            }
        }
    }
    assert!(mutants > 200, "exercised {mutants} mutants");
}

/// Rebuilds `schedule` with one stage's cost mode flipped.
fn flip_mode(schedule: &BarrierSchedule, stage: usize) -> BarrierSchedule {
    let mut out = BarrierSchedule::new(schedule.n());
    for (si, s) in schedule.stages().iter().enumerate() {
        let mode = if si == stage {
            match s.mode {
                SendMode::General => SendMode::ReceiversAwaiting,
                SendMode::ReceiversAwaiting => SendMode::General,
            }
        } else {
            s.mode
        };
        out.push(Stage {
            matrix: s.matrix.clone(),
            mode,
        });
    }
    out
}

/// Flipped-mode mutants, judged against a first-principles oracle
/// computed straight from the knowledge trace (Eq. 3): a stage may use
/// Eq. 2 iff every sender already knows its receiver arrived.
///
/// - Arrival -> departure flips must be flagged A004 exactly when the
///   oracle says the Eq. 2 premise fails (and accepted when it holds —
///   e.g. the wrap stage of a non-power-of-two dissemination, where the
///   flip is an *improvement*, not a defect).
/// - Departure -> arrival flips are always sound-but-pessimal; under
///   strict modes they must be flagged A006.
#[test]
fn flipped_mode_mutants_match_the_knowledge_oracle() {
    let cfg = AnalyzeConfig {
        dead_signals: false,
        progress: false,
        roundtrip: false,
        strict_modes: true,
        ..AnalyzeConfig::default()
    };
    let mut flips = 0usize;
    let mut unsound_flips = 0usize;
    for alg in [
        Algorithm::Linear,
        Algorithm::Dissemination,
        Algorithm::Butterfly,
        Algorithm::Tree,
    ] {
        for p in [2usize, 5, 8, 12, 16] {
            if !alg.applicable(p) {
                continue;
            }
            let schedule = full_schedule(alg, p);
            let trace = verify::trace(&schedule);
            for si in 0..schedule.len() {
                let mutant = flip_mode(&schedule, si);
                let report = analyze_schedule(&mutant, &cfg);
                let eq2_ok = schedule.stages()[si]
                    .matrix
                    .edges()
                    .all(|(i, j)| trace.states[si].get(j, i));
                match schedule.stages()[si].mode {
                    SendMode::General => {
                        // Now claims ReceiversAwaiting.
                        let flagged = report
                            .with_code(Code::ModeUnsound)
                            .any(|d| d.stage == Some(si));
                        assert_eq!(
                            flagged, !eq2_ok,
                            "{alg} p={p} stage {si} -> departure:\n{report}"
                        );
                        if !eq2_ok {
                            unsound_flips += 1;
                        }
                    }
                    SendMode::ReceiversAwaiting => {
                        // Clean schedules only use Eq. 2 where it is
                        // sound, so the flipped General stage must be
                        // reported as pessimistic under strict modes.
                        assert!(eq2_ok, "{alg} p={p} stage {si} was unsound already");
                        assert!(
                            report
                                .with_code(Code::PessimisticMode)
                                .any(|d| d.stage == Some(si)),
                            "{alg} p={p} stage {si} -> arrival:\n{report}"
                        );
                    }
                }
                flips += 1;
            }
        }
    }
    assert!(flips > 40, "exercised {flips} flips");
    assert!(unsound_flips > 20, "only {unsound_flips} unsound flips");
}

/// The analyzer's standing true positive: n-way dissemination's truncated
/// last stage makes middle-stage signals redundant at wrap-heavy sizes.
/// Pin one verified instance (4-way, P = 20: every stage-1 distance-4 and
/// distance-8 signal is dead) so the discovery cannot silently regress.
#[test]
fn nway_wrap_redundancy_stays_detected() {
    let cfg = AnalyzeConfig {
        progress: false,
        roundtrip: false,
        ..AnalyzeConfig::default()
    };
    let report = analyze_schedule(&full_schedule(Algorithm::NWay(4), 20), &cfg);
    let dead: Vec<_> = report.with_code(Code::DeadSignal).collect();
    assert_eq!(dead.len(), 40, "{report}");
    assert!(dead.iter().all(|d| d.stage == Some(1)));
    assert!(dead.iter().all(|d| {
        let (i, j) = (d.rank.unwrap(), d.partner.unwrap());
        let dist = (j + 20 - i) % 20;
        dist == 4 || dist == 8
    }));
    // And the barrier itself still synchronizes — dead, not broken.
    assert!(!report.has_code(Code::NonBarrier));
}

/// Analyzing a tuned hybrid after a hostile signal drop fails loudly —
/// the end-to-end shape of the CI gate.
#[test]
fn tuned_hybrid_mutant_is_flagged() {
    let machine = MachineSpec::dual_quad_cluster(4);
    let p = 32;
    let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
    let members: Vec<usize> = (0..p).collect();
    let tuned = tune_hybrid_for(&profile, &members, &TunerConfig::default());
    let schedule = tuned.schedule;
    let (si, edge) = schedule
        .stages()
        .iter()
        .enumerate()
        .find_map(|(si, s)| s.matrix.edges().next().map(|e| (si, e)))
        .expect("tuned schedule has signals");
    let mutant = drop_signal(&schedule, si, edge);
    let report = analyze_schedule(&mutant, &AnalyzeConfig::default());
    assert!(
        report.has_code(Code::NonBarrier) || report.has_code(Code::DeadSignal),
        "{report}"
    );
}
