//! `hbar-analyze` — static analysis front end.
//!
//! ```text
//! hbar-analyze --schedule sched.json [options]   # analyze one schedule
//! hbar-analyze --library [--max-p N] [options]   # sweep the algorithm
//!                                                #  library + tuned hybrids
//! options: --quick          skip dead-signal and codegen round-trip passes
//!          --strict-modes   also report pessimistic Eq. 1 stages (A006)
//!          --name NAME      function name for emitter round-trips
//!          --format text|json
//! ```
//!
//! Exits nonzero when any analyzed schedule has a warning or error.

use hbar_analyze::{analyze_schedule, AnalysisReport, AnalyzeConfig};
use hbar_core::algorithms::Algorithm;
use hbar_core::compose::{tune_hybrid_for, TunerConfig};
use hbar_core::schedule::BarrierSchedule;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: hbar-analyze (--schedule FILE | --library) \
     [--max-p N] [--quick] [--strict-modes] [--name NAME] [--format text|json]"
        .to_string()
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{a}`\n{}", usage()));
        };
        let boolean = matches!(name, "library" | "quick" | "strict-modes");
        if boolean {
            flags.insert(name.to_string(), "true".to_string());
        } else {
            let v = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), v.clone());
        }
    }
    Ok(flags)
}

fn run(args: &[String]) -> Result<bool, String> {
    if args
        .iter()
        .any(|a| matches!(a.as_str(), "-h" | "--help" | "help"))
    {
        println!("{}", usage());
        return Ok(true);
    }
    let flags = parse_flags(args)?;
    let mut cfg = if flags.contains_key("quick") {
        AnalyzeConfig::quick()
    } else {
        AnalyzeConfig::default()
    };
    cfg.strict_modes = flags.contains_key("strict-modes");
    if let Some(name) = flags.get("name") {
        cfg.codegen_name = name.clone();
    }
    let format = flags.get("format").map(String::as_str).unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format `{format}` (text|json)"));
    }

    let mut results: Vec<(String, AnalysisReport)> = Vec::new();
    match (flags.get("schedule"), flags.contains_key("library")) {
        (Some(path), false) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let schedule: BarrierSchedule = serde_json::from_str(&text)
                .map_err(|e| format!("cannot parse schedule {path}: {e}"))?;
            results.push((path.clone(), analyze_schedule(&schedule, &cfg)));
        }
        (None, true) => {
            let max_p: usize = flags
                .get("max-p")
                .map(|v| v.parse().map_err(|_| format!("bad --max-p `{v}`")))
                .transpose()?
                .unwrap_or(64);
            library_reports(max_p, &cfg, &mut results);
        }
        _ => {
            return Err(format!(
                "pass exactly one of --schedule or --library\n{}",
                usage()
            ))
        }
    }

    let failed = results.iter().filter(|(_, r)| r.has_failures()).count();
    if format == "json" {
        let items: Vec<Value> = results
            .iter()
            .map(|(target, report)| {
                Value::Object(vec![
                    ("target".to_string(), Value::Str(target.clone())),
                    ("report".to_string(), report.to_value()),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("analyzed".to_string(), Value::UInt(results.len() as u64)),
            ("failed".to_string(), Value::UInt(failed as u64)),
            ("results".to_string(), Value::Array(items)),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        for (target, report) in &results {
            if report.is_clean() {
                continue;
            }
            println!("== {target}");
            println!("{report}");
        }
        println!(
            "analyzed {} schedule(s): {} clean, {failed} with findings",
            results.len(),
            results.len() - failed,
        );
    }
    Ok(failed == 0)
}

/// The standing target set: every library algorithm at every applicable
/// size up to `max_p`, plus the tuned hybrid barriers for the paper's two
/// evaluation clusters.
fn library_reports(max_p: usize, cfg: &AnalyzeConfig, out: &mut Vec<(String, AnalysisReport)>) {
    for alg in Algorithm::extended_set() {
        // n-way dissemination (w >= 3) is excluded from the clean gate:
        // at wrap-heavy sizes (e.g. 4-way, P = 20) its truncated last
        // stage re-delivers middle-stage windows over independent relays,
        // so those middle signals are genuinely dead — a true A003
        // finding, kept as a regression test rather than a CI failure.
        if matches!(alg, Algorithm::NWay(w) if w > 2) {
            continue;
        }
        for p in 2..=max_p {
            if !alg.applicable(p) {
                continue;
            }
            let members: Vec<usize> = (0..p).collect();
            let schedule = alg.full_schedule(p, &members);
            out.push((format!("{alg} p={p}"), analyze_schedule(&schedule, cfg)));
        }
    }
    for (label, machine, p) in [
        ("cluster-a", MachineSpec::dual_quad_cluster(8), 64),
        ("cluster-b", MachineSpec::dual_hex_cluster(10), 120),
    ] {
        let p = p.min(max_p.max(2));
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();
        let tuned = tune_hybrid_for(&profile, &members, &TunerConfig::default());
        out.push((
            format!("tuned {label} p={p}"),
            analyze_schedule(&tuned.schedule, cfg),
        ));
    }
}
