//! Static analysis for barrier schedules and their compiled artifacts.
//!
//! Everything else in this workspace establishes correctness dynamically:
//! the Eq. 3 closure *runs* over a schedule, generated code is trusted,
//! and the threadrun primitives are only exercised by tests. This crate
//! adds the static layer: a schedule (from the tuner, or from untrusted
//! JSON) is checked for structural defects, non-synchronization, dead
//! signals, unsound Eq. 2 cost modes, deadlocks in its compiled rank
//! programs, and drift between those programs and the emitted C/Rust
//! sources — all before anything executes.
//!
//! Entry points: [`analyze_schedule`] for the full pipeline over a
//! [`BarrierSchedule`], [`analyze_programs`] for program-level checks
//! only, and [`source_drift`] to audit an emitted source against its
//! compiled programs. Findings carry stable codes ([`Code`]) documented
//! in `DESIGN.md` §10.

mod diag;
mod lints;
mod progress;
mod roundtrip;

pub use diag::{AnalysisReport, Code, Diagnostic, Severity};
pub use roundtrip::{parse_c_source, parse_rust_source, source_drift, CParse, Lang};

use hbar_core::codegen::{compile_schedule, RankProgram};
use hbar_core::schedule::BarrierSchedule;

/// Which passes run, and under what assumptions.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Run the dead-signal pass (A003). One closure per signal — the
    /// most expensive pass, skipped by [`AnalyzeConfig::quick`].
    pub dead_signals: bool,
    /// Run the program-level progress/deadlock pass (A010–A012).
    pub progress: bool,
    /// Round-trip the C and Rust emitters (A020–A022). Skipped by
    /// [`AnalyzeConfig::quick`].
    pub roundtrip: bool,
    /// Also report *pessimistic* modes (A006): Eq. 1 stages whose
    /// receivers all provably await. Off by default because such stages
    /// are correct — Eq. 1 is an upper bound on Eq. 2 — and several
    /// optimal library schedules (e.g. the last stage of a
    /// non-power-of-two dissemination) trip it legitimately.
    pub strict_modes: bool,
    /// Function name handed to the emitters during round-trip.
    pub codegen_name: String,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            dead_signals: true,
            progress: true,
            roundtrip: true,
            strict_modes: false,
            codegen_name: "barrier".to_string(),
        }
    }
}

impl AnalyzeConfig {
    /// The CI smoke configuration: everything linear-time (structure,
    /// closure, modes, progress); skips dead signals and round-trip.
    pub fn quick() -> Self {
        AnalyzeConfig {
            dead_signals: false,
            roundtrip: false,
            ..Self::default()
        }
    }
}

/// Runs every configured pass over `schedule`.
pub fn analyze_schedule(schedule: &BarrierSchedule, cfg: &AnalyzeConfig) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    let well_formed = lints::lint_schedule(schedule, cfg, &mut diagnostics);
    if well_formed {
        // Structural lints mirror compile_schedule's own validation, so
        // compilation cannot fail here; keep the error path anyway.
        match compile_schedule(schedule) {
            Ok(programs) => {
                if cfg.progress {
                    progress::check_programs(schedule.n(), &programs, &mut diagnostics);
                }
                if cfg.roundtrip {
                    roundtrip::check_roundtrip(&programs, &cfg.codegen_name, &mut diagnostics);
                }
            }
            Err(e) => diagnostics.push(Diagnostic::new(
                Code::InvalidProgram,
                Severity::Error,
                format!("schedule does not compile: {e}"),
            )),
        }
    }
    AnalysisReport {
        n: schedule.n(),
        stages: schedule.len(),
        signals: schedule.total_signals(),
        diagnostics,
    }
}

/// Runs the program-level passes (A010–A012) over rank programs directly,
/// for callers that start from compiled or hand-written programs rather
/// than a schedule.
pub fn analyze_programs(n: usize, programs: &[RankProgram]) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    progress::check_programs(n, programs, &mut diagnostics);
    AnalysisReport {
        n,
        stages: 0,
        signals: programs.iter().map(RankProgram::send_count).sum(),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::algorithms::Algorithm;

    #[test]
    fn full_pipeline_clean_on_library_schedule() {
        let members: Vec<usize> = (0..10).collect();
        let sched = Algorithm::Tree.full_schedule(10, &members);
        let report = analyze_schedule(&sched, &AnalyzeConfig::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.n, 10);
        assert_eq!(report.signals, sched.total_signals());
    }

    #[test]
    fn program_entry_point_reports_signals() {
        let members: Vec<usize> = (0..6).collect();
        let sched = Algorithm::Dissemination.full_schedule(6, &members);
        let progs = hbar_core::codegen::compile_schedule(&sched).unwrap();
        let report = analyze_programs(6, &progs);
        assert!(report.is_clean());
        assert_eq!(report.signals, sched.total_signals());
    }
}
