//! Schedule-level lints: structural checks, barrier verification, mode
//! soundness (Eq. 1 vs Eq. 2), and dead-signal detection via closure
//! deltas.

use crate::diag::{Code, Diagnostic, Severity};
use crate::AnalyzeConfig;
use hbar_core::schedule::BarrierSchedule;
use hbar_core::verify;
use hbar_matrix::ClosureWorkspace;
use hbar_topo::cost::SendMode;

/// Runs all schedule lints, appending findings to `out`. Returns `false`
/// when the schedule is structurally malformed (dimension mismatch /
/// self-signals), in which case closure-based passes were skipped and the
/// caller should not attempt compilation either.
pub(crate) fn lint_schedule(
    schedule: &BarrierSchedule,
    cfg: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) -> bool {
    let n = schedule.n();
    let mut well_formed = true;
    for (si, stage) in schedule.stages().iter().enumerate() {
        if stage.matrix.n() != n {
            out.push(
                Diagnostic::new(
                    Code::StageDimension,
                    Severity::Error,
                    format!(
                        "stage matrix is {}x{} but the schedule covers {n} ranks",
                        stage.matrix.n(),
                        stage.matrix.n()
                    ),
                )
                .with_stage(si),
            );
            well_formed = false;
            continue;
        }
        let mut signals = 0usize;
        for (i, j) in stage.matrix.edges() {
            signals += 1;
            if i == j {
                out.push(
                    Diagnostic::new(
                        Code::SelfSignal,
                        Severity::Error,
                        format!("rank {i} signals itself"),
                    )
                    .with_stage(si)
                    .with_rank(i),
                );
                well_formed = false;
            }
        }
        if signals == 0 {
            out.push(
                Diagnostic::new(
                    Code::EmptyStage,
                    Severity::Warning,
                    "stage carries no signals",
                )
                .with_stage(si),
            );
        }
    }
    if !well_formed {
        return false;
    }

    // Knowledge trace: states[s] is the knowledge matrix *before* stage s
    // (states[0] = identity), states[len] the final knowledge.
    let trace = verify::trace(schedule);

    // A005: not a barrier.
    let last = trace.last();
    if !last.is_all_true() {
        let mut witnesses = Vec::new();
        let mut missing = 0usize;
        for i in 0..n {
            for j in 0..n {
                if !last.get(i, j) {
                    missing += 1;
                    if witnesses.len() < 3 {
                        witnesses.push(format!("{j} never learns of {i}'s arrival"));
                    }
                }
            }
        }
        out.push(Diagnostic::new(
            Code::NonBarrier,
            Severity::Error,
            format!(
                "schedule does not synchronize: {missing} knowledge pair(s) missing ({}{})",
                witnesses.join("; "),
                if missing > witnesses.len() {
                    "; ..."
                } else {
                    ""
                }
            ),
        ));
    }

    // A004 / A006: mode soundness against the closure trace. A departure
    // (Eq. 2) signal i -> j is sound iff the sender can *know* the
    // receiver already arrived: K[j][i] before the stage — i's knowledge
    // (column i) includes j's arrival (row j).
    for (si, stage) in schedule.stages().iter().enumerate() {
        let before = &trace.states[si];
        match stage.mode {
            SendMode::ReceiversAwaiting => {
                for (i, j) in stage.matrix.edges() {
                    if !before.get(j, i) {
                        out.push(
                            Diagnostic::new(
                                Code::ModeUnsound,
                                Severity::Error,
                                format!(
                                    "departure-mode signal but sender {i} cannot know \
                                     receiver {j} has entered the barrier (Eq. 2 premise \
                                     unproven; Eq. 1 applies)"
                                ),
                            )
                            .with_stage(si)
                            .with_rank(i)
                            .with_partner(j),
                        );
                    }
                }
            }
            SendMode::General if cfg.strict_modes => {
                let mut any = false;
                let all_awaiting = stage.matrix.edges().all(|(i, j)| {
                    any = true;
                    before.get(j, i)
                });
                if any && all_awaiting {
                    out.push(
                        Diagnostic::new(
                            Code::PessimisticMode,
                            Severity::Info,
                            "every receiver provably awaits its signal; \
                             ReceiversAwaiting (Eq. 2) would model this stage more tightly",
                        )
                        .with_stage(si),
                    );
                }
            }
            SendMode::General => {}
        }
    }

    // A003: dead signals. A signal is dead when excluding it from the
    // closure leaves the final knowledge matrix unchanged — the rest of
    // the schedule already delivers everything it carries.
    if cfg.dead_signals {
        let full = trace.last();
        let mut ws = ClosureWorkspace::new();
        for (si, stage) in schedule.stages().iter().enumerate() {
            for (i, j) in stage.matrix.edges() {
                let reduced = ws.closure_excluding(
                    n,
                    schedule.stages().iter().map(|s| &s.matrix),
                    si,
                    (i, j),
                );
                if reduced == full {
                    out.push(
                        Diagnostic::new(
                            Code::DeadSignal,
                            Severity::Warning,
                            format!(
                                "signal {i} -> {j} carries no knowledge the rest of the \
                                 schedule does not already deliver"
                            ),
                        )
                        .with_stage(si)
                        .with_rank(i)
                        .with_partner(j),
                    );
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::algorithms::Algorithm;
    use hbar_core::schedule::Stage;
    use hbar_matrix::BoolMatrix;

    fn run(schedule: &BarrierSchedule, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        lint_schedule(schedule, cfg, &mut out);
        out
    }

    /// Builds a schedule through the serde data model, the way `hbar
    /// codegen --schedule` receives them — bypassing `push` validation.
    fn unchecked_schedule(n: usize, stages: &[Stage]) -> BarrierSchedule {
        use serde::{Deserialize, Serialize, Value};
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(n as u64)),
            ("stages".to_string(), stages.to_value()),
        ]);
        BarrierSchedule::from_value(&v).expect("layout matches")
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_tree_barrier_has_no_findings() {
        let members: Vec<usize> = (0..13).collect();
        let sched = Algorithm::Tree.full_schedule(13, &members);
        assert!(run(&sched, &AnalyzeConfig::default()).is_empty());
    }

    #[test]
    fn self_signal_and_empty_stage_are_flagged() {
        let mut m = BoolMatrix::zeros(3);
        m.set(1, 1, true);
        let sched = unchecked_schedule(
            3,
            &[Stage::arrival(m), Stage::arrival(BoolMatrix::zeros(3))],
        );
        let diags = run(&sched, &AnalyzeConfig::default());
        assert_eq!(codes(&diags), vec![Code::SelfSignal, Code::EmptyStage]);
        assert_eq!(diags[0].stage, Some(0));
        assert_eq!(diags[0].rank, Some(1));
    }

    #[test]
    fn dimension_mismatch_stops_closure_passes() {
        let sched = unchecked_schedule(3, &[Stage::arrival(BoolMatrix::from_edges(2, &[(0, 1)]))]);
        let diags = run(&sched, &AnalyzeConfig::default());
        assert_eq!(codes(&diags), vec![Code::StageDimension]);
    }

    #[test]
    fn non_barrier_reports_witnesses() {
        let stages = vec![BoolMatrix::from_edges(3, &[(0, 1)])];
        let sched = BarrierSchedule::from_arrival_matrices(3, stages);
        let diags = run(&sched, &AnalyzeConfig::default());
        assert!(codes(&diags).contains(&Code::NonBarrier));
        let msg = &diags
            .iter()
            .find(|d| d.code == Code::NonBarrier)
            .unwrap()
            .message;
        assert!(msg.contains("never learns"), "{msg}");
    }

    #[test]
    fn unsound_departure_mode_is_flagged() {
        // Stage 0 as departure: nobody's arrival is known yet, so every
        // Eq. 2 signal is unsound.
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::departure(BoolMatrix::from_edges(2, &[(0, 1)])));
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        let diags = run(&sched, &AnalyzeConfig::default());
        assert_eq!(codes(&diags), vec![Code::ModeUnsound]);
        assert_eq!(diags[0].stage, Some(0));
        assert_eq!(diags[0].rank, Some(0));
        assert_eq!(diags[0].partner, Some(1));
    }

    #[test]
    fn sound_departure_mode_passes() {
        // Linear: gather to 0, then scatter; the scatter is sound Eq. 2.
        let members: Vec<usize> = (0..5).collect();
        let sched = Algorithm::Linear.full_schedule(5, &members);
        assert!(run(&sched, &AnalyzeConfig::default()).is_empty());
    }

    #[test]
    fn strict_modes_flags_pessimistic_general_stage() {
        // Same linear barrier but with the departure stage forced to
        // General: correct, but Eq. 1 over-models it.
        let members: Vec<usize> = (0..4).collect();
        let sched = Algorithm::Linear.full_schedule(4, &members);
        let mats: Vec<_> = sched.stages().iter().map(|s| s.matrix.clone()).collect();
        let forced = BarrierSchedule::from_arrival_matrices(4, mats);
        let cfg = AnalyzeConfig {
            strict_modes: true,
            ..AnalyzeConfig::default()
        };
        let diags = run(&forced, &cfg);
        assert_eq!(codes(&diags), vec![Code::PessimisticMode]);
        assert_eq!(diags[0].stage, Some(1));
        assert_eq!(diags[0].severity, Severity::Info);
        // Off by default.
        assert!(run(&forced, &AnalyzeConfig::default()).is_empty());
    }

    #[test]
    fn dead_signal_is_detected_via_closure_delta() {
        // Dissemination over 4 ranks is minimal (no signal is dead). Add
        // an extra stage resending 0 -> 1: by then 0 knows everything, so
        // the resend itself is dead, and it also retroactively kills
        // stage 1's 3 -> 1 (the only knowledge 3 -> 1 delivered was a
        // subset of what the resend now provides).
        let members: Vec<usize> = (0..4).collect();
        let base = Algorithm::Dissemination.full_schedule(4, &members);
        assert!(run(&base, &AnalyzeConfig::default()).is_empty(), "minimal");
        let mut sched = base;
        sched.push(Stage::arrival(BoolMatrix::from_edges(4, &[(0, 1)])));
        let diags = run(&sched, &AnalyzeConfig::default());
        assert_eq!(codes(&diags), vec![Code::DeadSignal, Code::DeadSignal]);
        assert_eq!(diags[0].stage, Some(1));
        assert_eq!((diags[0].rank, diags[0].partner), (Some(3), Some(1)));
        assert_eq!(diags[1].stage, Some(2));
        assert_eq!((diags[1].rank, diags[1].partner), (Some(0), Some(1)));
        // The quick config skips the (quadratic) dead-signal pass.
        let quick = AnalyzeConfig::quick();
        assert!(run(&sched, &quick).is_empty());
    }
}
