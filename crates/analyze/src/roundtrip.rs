//! Codegen round-trip verification: parse the emitted Rust and C barrier
//! sources back into abstract rank programs and structurally diff them
//! against the `compile_schedule` output, so codegen drift is a static
//! failure instead of a runtime surprise.
//!
//! The parsers are deliberately strict: they accept exactly the shape the
//! emitters produce (receives posted before sends, request indices dense,
//! one wait per step) and report anything else as a parse failure. A
//! "cleverer" parser would hide precisely the drift this pass exists to
//! catch.

use crate::diag::{Code, Diagnostic, Severity};
use hbar_core::codegen::{c_source, rust_source, RankProgram, RankStep};

/// Which emitted language a parsed source came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lang {
    Rust,
    C,
}

impl Lang {
    fn drift_code(self) -> Code {
        match self {
            Lang::Rust => Code::RustDrift,
            Lang::C => Code::CDrift,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Lang::Rust => "Rust",
            Lang::C => "C",
        }
    }
}

/// Emits both sources for `programs` and verifies each parses back to the
/// exact same abstract programs. Appends findings to `out`.
pub(crate) fn check_roundtrip(programs: &[RankProgram], name: &str, out: &mut Vec<Diagnostic>) {
    match rust_source(name, programs) {
        Ok(src) => out.extend(source_drift(programs, &src, Lang::Rust)),
        Err(e) => out.push(Diagnostic::new(
            Code::EmitterFailure,
            Severity::Error,
            format!("Rust emitter failed: {e}"),
        )),
    }
    match c_source(name, programs) {
        Ok(src) => out.extend(source_drift(programs, &src, Lang::C)),
        Err(e) => out.push(Diagnostic::new(
            Code::EmitterFailure,
            Severity::Error,
            format!("C emitter failed: {e}"),
        )),
    }
}

/// Parses `source` as emitted `lang` text and structurally diffs it
/// against `expected`. Returns all findings (empty = faithful).
pub fn source_drift(expected: &[RankProgram], source: &str, lang: Lang) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let parsed = match lang {
        Lang::Rust => parse_rust_source(source),
        Lang::C => parse_c_source(source).map(|c| {
            let widest = c
                .programs
                .iter()
                .flat_map(|p| p.steps.iter())
                .map(|s| s.recvs.len() + s.sends.len())
                .max()
                .unwrap_or(0)
                .max(1);
            if c.declared_requests != widest {
                out.push(Diagnostic::new(
                    Code::CDrift,
                    Severity::Error,
                    format!(
                        "request array holds {} slot(s) but the widest step posts {widest}",
                        c.declared_requests
                    ),
                ));
            }
            c.programs
        }),
    };
    let parsed = match parsed {
        Ok(p) => p,
        Err(e) => {
            out.push(Diagnostic::new(
                Code::EmitterFailure,
                Severity::Error,
                format!("emitted {} source does not parse: {e}", lang.name()),
            ));
            return out;
        }
    };
    diff_programs(expected, &parsed, lang, &mut out);
    out
}

/// Structural diff: the emitted source must encode exactly the non-empty
/// rank programs, in rank order, step for step.
fn diff_programs(
    expected: &[RankProgram],
    parsed: &[RankProgram],
    lang: Lang,
    out: &mut Vec<Diagnostic>,
) {
    let want: Vec<&RankProgram> = expected.iter().filter(|p| !p.steps.is_empty()).collect();
    if want.len() != parsed.len() {
        out.push(Diagnostic::new(
            lang.drift_code(),
            Severity::Error,
            format!(
                "{} source encodes {} rank arm(s); programs require {}",
                lang.name(),
                parsed.len(),
                want.len()
            ),
        ));
        return;
    }
    for (exp, got) in want.iter().zip(parsed) {
        if exp.rank != got.rank {
            out.push(
                Diagnostic::new(
                    lang.drift_code(),
                    Severity::Error,
                    format!(
                        "arm order drift: expected rank {}, found {}",
                        exp.rank, got.rank
                    ),
                )
                .with_rank(exp.rank),
            );
            return;
        }
        if exp.steps == got.steps {
            continue;
        }
        let detail = if exp.steps.len() != got.steps.len() {
            format!(
                "{} step(s) emitted, {} compiled",
                got.steps.len(),
                exp.steps.len()
            )
        } else {
            let si = exp
                .steps
                .iter()
                .zip(&got.steps)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            format!(
                "step {si} drifted: emitted recv{:?} send{:?}, compiled recv{:?} send{:?}",
                got.steps[si].recvs, got.steps[si].sends, exp.steps[si].recvs, exp.steps[si].sends
            )
        };
        out.push(
            Diagnostic::new(
                lang.drift_code(),
                Severity::Error,
                format!("rank {} program drift: {detail}", exp.rank),
            )
            .with_rank(exp.rank),
        );
    }
}

/// A parsed C source: the abstract programs plus the declared request
/// array capacity (checked against the widest step separately).
pub struct CParse {
    pub programs: Vec<RankProgram>,
    pub declared_requests: usize,
}

fn parse_num(text: &str, what: &str) -> Result<usize, String> {
    text.trim()
        .parse::<usize>()
        .map_err(|_| format!("cannot read {what} from `{text}`"))
}

/// Parses the output of [`rust_source`] back into rank programs.
///
/// # Errors
/// Fails on any line shape the emitter cannot have produced, including
/// receives posted after sends or requests left without a `wait_all`.
pub fn parse_rust_source(src: &str) -> Result<Vec<RankProgram>, String> {
    let mut programs: Vec<RankProgram> = Vec::new();
    let mut arm: Option<RankProgram> = None;
    let mut step = RankStep::default();
    for (ln, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let ctx = |msg: &str| format!("line {}: {msg}", ln + 1);
        if let Some(prog) = arm.as_mut() {
            if let Some(inner) = line
                .strip_prefix("t.irecv(")
                .and_then(|r| r.strip_suffix(");"))
            {
                if !step.sends.is_empty() {
                    return Err(ctx("receive posted after a send in the same step"));
                }
                step.recvs.push(parse_num(inner, "source rank")?);
            } else if let Some(inner) = line
                .strip_prefix("t.issend(")
                .and_then(|r| r.strip_suffix(");"))
            {
                step.sends.push(parse_num(inner, "destination rank")?);
            } else if line == "t.wait_all();" {
                if step.is_empty() {
                    return Err(ctx("wait_all with no posted requests"));
                }
                prog.steps.push(std::mem::take(&mut step));
            } else if line == "}" {
                if !step.is_empty() {
                    return Err(ctx("requests posted without a closing wait_all"));
                }
                if prog.steps.is_empty() {
                    return Err(ctx("empty match arm"));
                }
                programs.push(arm.take().expect("inside arm"));
            } else {
                return Err(ctx("unrecognized statement inside a rank arm"));
            }
        } else if let Some(head) = line.strip_suffix(" => {") {
            if head != "_" {
                arm = Some(RankProgram {
                    rank: parse_num(head, "rank")?,
                    steps: Vec::new(),
                });
            }
        }
        // Everything outside arms (fn header, match header, braces,
        // comments, the `_ => {}` arm) carries no program content.
    }
    if arm.is_some() {
        return Err("source ends inside a rank arm".to_string());
    }
    Ok(programs)
}

/// Parses the output of [`c_source`] back into rank programs plus the
/// declared `MPI_Request` array size.
///
/// # Errors
/// Fails on any line shape the emitter cannot have produced, including
/// out-of-order step comments, non-dense request indices, or a
/// `MPI_Waitall` count that disagrees with the posted requests.
pub fn parse_c_source(src: &str) -> Result<CParse, String> {
    let mut programs: Vec<RankProgram> = Vec::new();
    let mut declared_requests: Option<usize> = None;
    let mut arm: Option<RankProgram> = None;
    let mut step = RankStep::default();
    for (ln, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let ctx = |msg: String| format!("line {}: {msg}", ln + 1);
        if let Some(inner) = line
            .strip_prefix("MPI_Request req[")
            .and_then(|r| r.strip_suffix("];"))
        {
            if declared_requests.is_some() {
                return Err(ctx("duplicate request array declaration".into()));
            }
            declared_requests = Some(parse_num(inner, "request array size")?);
            continue;
        }
        if let Some(prog) = arm.as_mut() {
            let posted = step.recvs.len() + step.sends.len();
            if let Some(inner) = line
                .strip_prefix("/* step ")
                .and_then(|r| r.strip_suffix(" */"))
            {
                if parse_num(inner, "step index")? != prog.steps.len() {
                    return Err(ctx(format!(
                        "step comment `{line}` out of order (expected step {})",
                        prog.steps.len()
                    )));
                }
            } else if let Some(inner) = line
                .strip_prefix("MPI_Irecv(0, 0, MPI_BYTE, ")
                .and_then(|r| r.strip_suffix("]);"))
            {
                let (src_rank, req) = split_partner_req(inner)?;
                if !step.sends.is_empty() {
                    return Err(ctx("receive posted after a send in the same step".into()));
                }
                if req != posted {
                    return Err(ctx(format!("request index {req}, expected {posted}")));
                }
                step.recvs.push(src_rank);
            } else if let Some(inner) = line
                .strip_prefix("MPI_Issend(0, 0, MPI_BYTE, ")
                .and_then(|r| r.strip_suffix("]);"))
            {
                let (dst, req) = split_partner_req(inner)?;
                if req != posted {
                    return Err(ctx(format!("request index {req}, expected {posted}")));
                }
                step.sends.push(dst);
            } else if let Some(inner) = line
                .strip_prefix("MPI_Waitall(")
                .and_then(|r| r.strip_suffix(", req, MPI_STATUSES_IGNORE);"))
            {
                let count = parse_num(inner, "waitall count")?;
                if count != posted || posted == 0 {
                    return Err(ctx(format!("MPI_Waitall({count}) after {posted} post(s)")));
                }
                prog.steps.push(std::mem::take(&mut step));
            } else if line == "break;" {
                if !step.is_empty() {
                    return Err(ctx("requests posted without a closing MPI_Waitall".into()));
                }
                if prog.steps.is_empty() {
                    return Err(ctx("empty case arm".into()));
                }
                programs.push(arm.take().expect("inside arm"));
            } else {
                return Err(ctx(format!(
                    "unrecognized statement `{line}` inside a case"
                )));
            }
        } else if let Some(head) = line.strip_prefix("case ").and_then(|r| r.strip_suffix(":")) {
            arm = Some(RankProgram {
                rank: parse_num(head, "case rank")?,
                steps: Vec::new(),
            });
        }
        // Prologue lines and the default arm carry no program content.
    }
    if arm.is_some() {
        return Err("source ends inside a case arm".to_string());
    }
    Ok(CParse {
        programs,
        declared_requests: declared_requests.ok_or("no MPI_Request array declared")?,
    })
}

/// Splits `"<partner>, 0, comm, &req[<idx>"` (the middle of an Irecv or
/// Issend argument list) into the partner rank and request index.
fn split_partner_req(inner: &str) -> Result<(usize, usize), String> {
    let (partner, req) = inner
        .split_once(", 0, comm, &req[")
        .ok_or_else(|| format!("malformed argument list `{inner}`"))?;
    Ok((
        parse_num(partner, "partner rank")?,
        parse_num(req, "request index")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::algorithms::Algorithm;
    use hbar_core::codegen::compile_schedule;

    fn programs(alg: Algorithm, p: usize) -> Vec<RankProgram> {
        let members: Vec<usize> = (0..p).collect();
        compile_schedule(&alg.full_schedule(p, &members)).unwrap()
    }

    fn roundtrip(progs: &[RankProgram]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_roundtrip(progs, "b", &mut out);
        out
    }

    #[test]
    fn emitted_sources_roundtrip_exactly() {
        for (alg, p) in [
            (Algorithm::Linear, 6),
            (Algorithm::Tree, 11),
            (Algorithm::Dissemination, 8),
            (Algorithm::Butterfly, 16),
        ] {
            let progs = programs(alg, p);
            assert!(roundtrip(&progs).is_empty(), "{alg} at {p}");
        }
    }

    #[test]
    fn rust_parser_recovers_programs() {
        let progs = programs(Algorithm::Tree, 7);
        let src = rust_source("t7", &progs).unwrap();
        let parsed = parse_rust_source(&src).unwrap();
        let nonempty: Vec<&RankProgram> = progs.iter().filter(|p| !p.steps.is_empty()).collect();
        assert_eq!(parsed.len(), nonempty.len());
        for (exp, got) in nonempty.iter().zip(&parsed) {
            assert_eq!(exp.rank, got.rank);
            assert_eq!(exp.steps, got.steps);
        }
    }

    #[test]
    fn c_parser_recovers_programs_and_request_bound() {
        let progs = programs(Algorithm::Linear, 5);
        let src = c_source("l5", &progs).unwrap();
        let parsed = parse_c_source(&src).unwrap();
        assert_eq!(parsed.declared_requests, 4, "master gathers 4 signals");
        assert_eq!(parsed.programs.len(), 5);
        assert_eq!(parsed.programs[0].steps[0].recvs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn tampered_partner_is_drift() {
        let progs = programs(Algorithm::Dissemination, 4);
        let src = rust_source("d4", &progs).unwrap();
        let tampered = src.replacen("t.issend(1);", "t.issend(2);", 1);
        let diags = source_drift(&progs, &tampered, Lang::Rust);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::RustDrift);
        assert!(diags[0].message.contains("drift"), "{}", diags[0].message);
    }

    #[test]
    fn deleted_waitall_is_a_parse_failure() {
        let progs = programs(Algorithm::Tree, 4);
        let src = c_source("t4", &progs).unwrap();
        let idx = src.find("        MPI_Waitall").unwrap();
        let end = src[idx..].find('\n').unwrap() + idx + 1;
        let tampered = format!("{}{}", &src[..idx], &src[end..]);
        let diags = source_drift(&progs, &tampered, Lang::C);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::EmitterFailure);
    }

    #[test]
    fn undersized_request_array_is_drift() {
        let progs = programs(Algorithm::Linear, 4);
        let src = c_source("l4", &progs).unwrap();
        let tampered = src.replace("MPI_Request req[3];", "MPI_Request req[2];");
        let diags = source_drift(&progs, &tampered, Lang::C);
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::CDrift && d.message.contains("request array")),
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_arm_is_drift() {
        let progs = programs(Algorithm::Dissemination, 3);
        let src = rust_source("d3", &progs).unwrap();
        let start = src.find("        2 => {").unwrap();
        let end = src[start..].find("        }\n").unwrap() + start + "        }\n".len();
        let tampered = format!("{}{}", &src[..start], &src[end..]);
        let diags = source_drift(&progs, &tampered, Lang::Rust);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("rank arm"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn dropped_receive_statement_is_drift() {
        let progs = programs(Algorithm::Linear, 3);
        let src = rust_source("l3", &progs).unwrap();
        let tampered = src.replacen("            t.irecv(1);\n", "", 1);
        let diags = source_drift(&progs, &tampered, Lang::Rust);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::RustDrift);
        assert_eq!(diags[0].rank, Some(0));
    }

    #[test]
    fn invalid_name_reports_emitter_failure() {
        let progs = programs(Algorithm::Linear, 3);
        let mut out = Vec::new();
        check_roundtrip(&progs, "not a name", &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.code == Code::EmitterFailure));
    }
}
