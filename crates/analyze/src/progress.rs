//! Program-level progress analysis: unmatched signal counters and
//! deadlock detection over compiled rank programs.
//!
//! The abstract machine mirrors the `SignalBoard` sig/ack discipline of
//! `hbar-threadrun` (and zero-byte `MPI_Issend` semantics): a send is
//! *posted* the moment its step begins, matches FIFO against the
//! receiver's cumulative demand for that `(src, dst)` pair, and the step
//! completes only when every posted receive has a matching send *and*
//! every posted synchronous send has been consumed by its receiver. This
//! over-approximates nothing the real backends allow: a schedule that
//! cannot complete here blocks every backend too.

use crate::diag::{Code, Diagnostic, Severity};
use hbar_core::codegen::RankProgram;
use std::collections::HashMap;

/// Cumulative per-pair counters, keyed by `(src, dst)`.
type PairCounts = HashMap<(usize, usize), u64>;

/// Runs the progress pass over `programs`, which must cover ranks
/// `0..n` in order. Appends findings to `out`.
pub(crate) fn check_programs(n: usize, programs: &[RankProgram], out: &mut Vec<Diagnostic>) {
    if !validate_shape(n, programs, out) {
        return;
    }

    // A010: per-pair totals must match — every send needs a receive.
    let mut sends: PairCounts = HashMap::new();
    let mut recvs: PairCounts = HashMap::new();
    for prog in programs {
        for step in &prog.steps {
            for &dst in &step.sends {
                *sends.entry((prog.rank, dst)).or_insert(0) += 1;
            }
            for &src in &step.recvs {
                *recvs.entry((src, prog.rank)).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<(usize, usize)> = sends.keys().chain(recvs.keys()).copied().collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut unmatched = false;
    for (src, dst) in pairs {
        let s = sends.get(&(src, dst)).copied().unwrap_or(0);
        let r = recvs.get(&(src, dst)).copied().unwrap_or(0);
        if s != r {
            unmatched = true;
            out.push(
                Diagnostic::new(
                    Code::UnmatchedSignal,
                    Severity::Error,
                    format!("{src} sends {s} signal(s) to {dst} but {dst} receives {r}"),
                )
                .with_rank(src)
                .with_partner(dst),
            );
        }
    }
    // With unmatched counters a stall is already explained; the deadlock
    // pass would only restate it.
    if unmatched {
        return;
    }

    deadlock_check(programs, out);
}

/// A012: rank programs must be dense, ordered, and reference only valid
/// partners. Returns false (after reporting) when the abstract machine
/// cannot run.
fn validate_shape(n: usize, programs: &[RankProgram], out: &mut Vec<Diagnostic>) -> bool {
    if programs.len() != n {
        out.push(Diagnostic::new(
            Code::InvalidProgram,
            Severity::Error,
            format!("{} rank programs for {n} ranks", programs.len()),
        ));
        return false;
    }
    let mut ok = true;
    for (idx, prog) in programs.iter().enumerate() {
        if prog.rank != idx {
            out.push(
                Diagnostic::new(
                    Code::InvalidProgram,
                    Severity::Error,
                    format!("program {idx} claims rank {}", prog.rank),
                )
                .with_rank(idx),
            );
            ok = false;
            continue;
        }
        for step in &prog.steps {
            for &p in step.recvs.iter().chain(&step.sends) {
                if p >= n || p == prog.rank {
                    out.push(
                        Diagnostic::new(
                            Code::InvalidProgram,
                            Severity::Error,
                            if p == prog.rank {
                                format!("rank {p} communicates with itself")
                            } else {
                                format!("partner {p} out of range for {n} ranks")
                            },
                        )
                        .with_rank(prog.rank)
                        .with_partner(p),
                    );
                    ok = false;
                }
            }
        }
    }
    ok
}

/// Abstract execution to a fixed point; any rank left mid-program is
/// deadlocked (A011), and the wait-for graph names a culprit cycle.
fn deadlock_check(programs: &[RankProgram], out: &mut Vec<Diagnostic>) {
    let mut posted: PairCounts = HashMap::new(); // sends posted, src -> dst
    let mut want: PairCounts = HashMap::new(); // receives demanded, src -> dst
    let mut consumed: PairCounts = HashMap::new(); // matched signals
    let mut ptr = vec![0usize; programs.len()];

    let enter =
        |prog: &RankProgram, step: usize, posted: &mut PairCounts, want: &mut PairCounts| {
            for &dst in &prog.steps[step].sends {
                *posted.entry((prog.rank, dst)).or_insert(0) += 1;
            }
            for &src in &prog.steps[step].recvs {
                *want.entry((src, prog.rank)).or_insert(0) += 1;
            }
        };
    for prog in programs {
        if !prog.steps.is_empty() {
            enter(prog, 0, &mut posted, &mut want);
        }
    }

    loop {
        // Nonblocking receives match as soon as a signal is available,
        // even while their step still waits on other requests.
        for (&pair, &demand) in &want {
            let avail = posted.get(&pair).copied().unwrap_or(0).min(demand);
            let c = consumed.entry(pair).or_insert(0);
            *c = (*c).max(avail);
        }
        let mut progressed = false;
        for prog in programs {
            let at = ptr[prog.rank];
            if at >= prog.steps.len() {
                continue;
            }
            let step = &prog.steps[at];
            let recvs_done = step.recvs.iter().all(|&src| {
                let pair = (src, prog.rank);
                consumed.get(&pair).copied().unwrap_or(0) >= want.get(&pair).copied().unwrap_or(0)
            });
            let sends_acked = step.sends.iter().all(|&dst| {
                let pair = (prog.rank, dst);
                consumed.get(&pair).copied().unwrap_or(0) >= posted.get(&pair).copied().unwrap_or(0)
            });
            if recvs_done && sends_acked {
                ptr[prog.rank] = at + 1;
                if at + 1 < prog.steps.len() {
                    enter(prog, at + 1, &mut posted, &mut want);
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let stuck: Vec<usize> = programs
        .iter()
        .filter(|p| ptr[p.rank] < p.steps.len())
        .map(|p| p.rank)
        .collect();
    if stuck.is_empty() {
        return;
    }

    // Wait-for edges: each stuck rank points at the ranks it needs.
    let mut waits_on: HashMap<usize, Vec<usize>> = HashMap::new();
    for &r in &stuck {
        let step = &programs[r].steps[ptr[r]];
        let mut blockers = Vec::new();
        for &src in &step.recvs {
            let pair = (src, r);
            if posted.get(&pair).copied().unwrap_or(0) < want.get(&pair).copied().unwrap_or(0) {
                blockers.push(src);
            }
        }
        for &dst in &step.sends {
            let pair = (r, dst);
            if consumed.get(&pair).copied().unwrap_or(0) < posted.get(&pair).copied().unwrap_or(0) {
                blockers.push(dst);
            }
        }
        blockers.sort_unstable();
        blockers.dedup();
        waits_on.insert(r, blockers);
    }

    match find_cycle(&waits_on) {
        Some(cycle) => {
            let path: Vec<String> = cycle.iter().map(usize::to_string).collect();
            out.push(
                Diagnostic::new(
                    Code::Deadlock,
                    Severity::Error,
                    format!(
                        "deadlock: {} of {} rank(s) cannot complete; wait cycle {} -> {}",
                        stuck.len(),
                        programs.len(),
                        path.join(" -> "),
                        cycle[0],
                    ),
                )
                .with_rank(cycle[0])
                .with_partner(cycle[1 % cycle.len()]),
            );
        }
        None => {
            // Counts matched, so a stall without a cycle should be
            // impossible — report it anyway rather than stay silent.
            out.push(Diagnostic::new(
                Code::Deadlock,
                Severity::Error,
                format!("abstract execution stalls with ranks {stuck:?} blocked"),
            ));
        }
    }
}

/// First cycle reachable in the wait-for graph, as a rank list.
fn find_cycle(waits_on: &HashMap<usize, Vec<usize>>) -> Option<Vec<usize>> {
    // Iterative DFS with an explicit on-path stack.
    let mut color: HashMap<usize, u8> = HashMap::new(); // 1 = on path, 2 = done
    let mut nodes: Vec<usize> = waits_on.keys().copied().collect();
    nodes.sort_unstable();
    for &start in &nodes {
        if color.contains_key(&start) {
            continue;
        }
        let mut path: Vec<(usize, usize)> = vec![(start, 0)];
        color.insert(start, 1);
        while let Some(&(node, next)) = path.last() {
            let succs = waits_on.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if next >= succs.len() {
                color.insert(node, 2);
                path.pop();
                continue;
            }
            path.last_mut().expect("nonempty").1 += 1;
            let succ = succs[next];
            match color.get(&succ) {
                Some(1) => {
                    // Found a cycle: slice the path from succ onward.
                    let pos = path.iter().position(|&(r, _)| r == succ).unwrap();
                    return Some(path[pos..].iter().map(|&(r, _)| r).collect());
                }
                Some(_) => {}
                None => {
                    color.insert(succ, 1);
                    path.push((succ, 0));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::algorithms::Algorithm;
    use hbar_core::codegen::{compile_schedule, RankStep};

    fn run(n: usize, programs: &[RankProgram]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_programs(n, programs, &mut out);
        out
    }

    fn prog(rank: usize, steps: Vec<(Vec<usize>, Vec<usize>)>) -> RankProgram {
        RankProgram {
            rank,
            steps: steps
                .into_iter()
                .map(|(recvs, sends)| RankStep { recvs, sends })
                .collect(),
        }
    }

    #[test]
    fn compiled_library_programs_make_progress() {
        for (alg, p) in [
            (Algorithm::Linear, 7),
            (Algorithm::Tree, 12),
            (Algorithm::Dissemination, 9),
            (Algorithm::Butterfly, 8),
        ] {
            let members: Vec<usize> = (0..p).collect();
            let progs = compile_schedule(&alg.full_schedule(p, &members)).unwrap();
            assert!(run(p, &progs).is_empty(), "{alg} at {p}");
        }
    }

    #[test]
    fn dropped_receive_is_unmatched() {
        // 0 <-> 1 exchange, but 1 forgets to receive.
        let programs = vec![
            prog(0, vec![(vec![1], vec![1])]),
            prog(1, vec![(vec![], vec![0])]),
        ];
        let diags = run(2, &programs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::UnmatchedSignal);
        assert_eq!((diags[0].rank, diags[0].partner), (Some(0), Some(1)));
        assert!(diags[0].message.contains("sends 1"), "{}", diags[0].message);
    }

    #[test]
    fn crossed_waits_deadlock_with_cycle() {
        // Both ranks receive first, send second: classic head-of-line
        // deadlock even though all counters match.
        let programs = vec![
            prog(0, vec![(vec![1], vec![]), (vec![], vec![1])]),
            prog(1, vec![(vec![0], vec![]), (vec![], vec![0])]),
        ];
        let diags = run(2, &programs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Deadlock);
        assert!(
            diags[0].message.contains("wait cycle"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn same_step_exchange_is_not_a_deadlock() {
        // Nonblocking posts let a same-step exchange complete.
        let programs = vec![
            prog(0, vec![(vec![1], vec![1])]),
            prog(1, vec![(vec![0], vec![0])]),
        ];
        assert!(run(2, &programs).is_empty());
    }

    #[test]
    fn synchronous_send_ack_participates_in_deadlock() {
        // All pair counters match, but 0's synchronous send to 1 is only
        // consumed in 1's *second* step, and 1's first step transitively
        // waits on 0's second step: 0 -> 1 -> 2 -> 0 through an ack edge.
        let programs = vec![
            prog(0, vec![(vec![], vec![1]), (vec![], vec![2])]),
            prog(1, vec![(vec![2], vec![]), (vec![0], vec![])]),
            prog(2, vec![(vec![0], vec![]), (vec![], vec![1])]),
        ];
        let diags = run(3, &programs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::Deadlock);
        assert!(diags[0].message.contains("3 of 3"), "{}", diags[0].message);
    }

    #[test]
    fn three_cycle_is_reported() {
        let programs = vec![
            prog(0, vec![(vec![2], vec![]), (vec![], vec![1])]),
            prog(1, vec![(vec![0], vec![]), (vec![], vec![2])]),
            prog(2, vec![(vec![1], vec![]), (vec![], vec![0])]),
        ];
        let diags = run(3, &programs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Deadlock);
        assert!(diags[0].message.contains("3 of 3"), "{}", diags[0].message);
    }

    #[test]
    fn malformed_programs_are_rejected() {
        let bad_rank = vec![prog(1, vec![])];
        let diags = run(1, &bad_rank);
        assert_eq!(diags[0].code, Code::InvalidProgram);

        let self_talk = vec![prog(0, vec![(vec![], vec![0])]), prog(1, vec![])];
        let diags = run(2, &self_talk);
        assert!(diags.iter().any(|d| d.code == Code::InvalidProgram));

        let out_of_range = vec![prog(0, vec![(vec![5], vec![])]), prog(1, vec![])];
        let diags = run(2, &out_of_range);
        assert!(diags.iter().any(|d| d.code == Code::InvalidProgram));

        let wrong_count = run(3, &[prog(0, vec![])]);
        assert_eq!(wrong_count[0].code, Code::InvalidProgram);
    }
}
