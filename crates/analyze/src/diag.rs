//! Structured diagnostics: stable codes, severities, spans.
//!
//! Every analysis pass reports through [`Diagnostic`] so tooling can match
//! on codes rather than message text, and CI can consume the JSON form
//! (`hbar-analyze --format json`). Codes are grouped by pass: `A00x` are
//! schedule lints, `A01x` come from program-level progress analysis, and
//! `A02x` from codegen round-trip verification.

use serde::{Serialize, Value};
use std::fmt;

/// How bad a finding is. `Info` findings never fail a run; `Warning` and
/// `Error` do (the CLI exits nonzero on either).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the schedule is correct but could be improved.
    Info,
    /// Suspicious but not provably wrong at runtime (e.g. a dead signal).
    Warning,
    /// The schedule or program is defective.
    Error,
}

impl Severity {
    /// Lowercase name, as used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// Stable diagnostic codes. The numeric part never changes meaning; new
/// checks get new codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Code {
    /// A001: a rank signals itself in some stage.
    SelfSignal,
    /// A002: a stage carries no signals at all.
    EmptyStage,
    /// A003: a signal whose removal leaves the final Eq. 3 knowledge
    /// matrix unchanged — it synchronizes nothing.
    DeadSignal,
    /// A004: a `ReceiversAwaiting` (Eq. 2) stage whose receiver is not
    /// provably inside the barrier when the signal is sent.
    ModeUnsound,
    /// A005: the schedule does not synchronize all ranks.
    NonBarrier,
    /// A006 (opt-in via strict modes): a `General` (Eq. 1) stage whose
    /// receivers all provably await — Eq. 2 would model it more tightly.
    PessimisticMode,
    /// A007: a stage matrix dimension differs from the schedule's.
    StageDimension,
    /// A010: total sends from `i` to `j` differ from total receives.
    UnmatchedSignal,
    /// A011: abstract execution of the rank programs cannot complete.
    Deadlock,
    /// A012: a rank program is malformed (bad rank order, out-of-range or
    /// self partner).
    InvalidProgram,
    /// A020: the emitted Rust source does not encode the compiled
    /// programs.
    RustDrift,
    /// A021: the emitted C source does not encode the compiled programs.
    CDrift,
    /// A022: an emitted source could not be generated or parsed back.
    EmitterFailure,
}

impl Code {
    /// The stable code string, e.g. `"A003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SelfSignal => "A001",
            Code::EmptyStage => "A002",
            Code::DeadSignal => "A003",
            Code::ModeUnsound => "A004",
            Code::NonBarrier => "A005",
            Code::PessimisticMode => "A006",
            Code::StageDimension => "A007",
            Code::UnmatchedSignal => "A010",
            Code::Deadlock => "A011",
            Code::InvalidProgram => "A012",
            Code::RustDrift => "A020",
            Code::CDrift => "A021",
            Code::EmitterFailure => "A022",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Code {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// One finding: a code, a severity, an optional span (stage index, rank,
/// partner rank) and a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Stage index the finding refers to, if stage-scoped.
    pub stage: Option<usize>,
    /// Primary rank (the signal's sender, or the blocked rank).
    pub rank: Option<usize>,
    /// Secondary rank (the signal's receiver, or the rank waited on).
    pub partner: Option<usize>,
    pub message: String,
}

impl Diagnostic {
    /// A spanless diagnostic; attach spans with the `with_*` builders.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            stage: None,
            rank: None,
            partner: None,
            message: message.into(),
        }
    }

    #[must_use]
    pub fn with_stage(mut self, stage: usize) -> Self {
        self.stage = Some(stage);
        self
    }

    #[must_use]
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = Some(rank);
        self
    }

    #[must_use]
    pub fn with_partner(mut self, partner: usize) -> Self {
        self.partner = Some(partner);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        let mut span = Vec::new();
        if let Some(s) = self.stage {
            span.push(format!("stage {s}"));
        }
        match (self.rank, self.partner) {
            (Some(r), Some(p)) => span.push(format!("{r} -> {p}")),
            (Some(r), None) => span.push(format!("rank {r}")),
            _ => {}
        }
        if !span.is_empty() {
            write!(f, " ({})", span.join(", "))?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let opt = |v: Option<usize>| match v {
            Some(x) => Value::UInt(x as u64),
            None => Value::Null,
        };
        Value::Object(vec![
            ("code".to_string(), self.code.to_value()),
            ("severity".to_string(), self.severity.to_value()),
            ("stage".to_string(), opt(self.stage)),
            ("rank".to_string(), opt(self.rank)),
            ("partner".to_string(), opt(self.partner)),
            ("message".to_string(), Value::Str(self.message.clone())),
        ])
    }
}

/// The outcome of analyzing one schedule (or program set): a few summary
/// facts plus all findings, in pass order.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Number of ranks the schedule covers.
    pub n: usize,
    /// Number of stages.
    pub stages: usize,
    /// Total signal count across all stages.
    pub signals: usize,
    /// All findings from all passes that ran.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when no pass found anything, at any severity.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when the report should fail a CI gate: any finding at
    /// `Warning` or above.
    pub fn has_failures(&self) -> bool {
        self.worst() >= Some(Severity::Warning)
    }

    /// All findings with the given code.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// True if any finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.with_code(code).next().is_some()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} ranks, {} stages, {} signals: {}",
            self.n,
            self.stages,
            self.signals,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} finding(s)", self.diagnostics.len())
            }
        )
    }
}

impl Serialize for AnalysisReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_string(), Value::UInt(self.n as u64)),
            ("stages".to_string(), Value::UInt(self.stages as u64)),
            ("signals".to_string(), Value::UInt(self.signals as u64)),
            ("clean".to_string(), Value::Bool(self.is_clean())),
            ("diagnostics".to_string(), self.diagnostics.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_code_and_span() {
        let d = Diagnostic::new(Code::DeadSignal, Severity::Warning, "carries no knowledge")
            .with_stage(2)
            .with_rank(3)
            .with_partner(7);
        assert_eq!(
            d.to_string(),
            "warning[A003] (stage 2, 3 -> 7): carries no knowledge"
        );
    }

    #[test]
    fn report_severity_and_json() {
        let report = AnalysisReport {
            n: 4,
            stages: 2,
            signals: 6,
            diagnostics: vec![
                Diagnostic::new(Code::PessimisticMode, Severity::Info, "tighten"),
                Diagnostic::new(Code::NonBarrier, Severity::Error, "missing"),
            ],
        };
        assert!(!report.is_clean());
        assert!(report.has_failures());
        assert_eq!(report.worst(), Some(Severity::Error));
        assert!(report.has_code(Code::NonBarrier));
        assert!(!report.has_code(Code::Deadlock));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"A005\""), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
    }

    #[test]
    fn info_only_report_does_not_fail() {
        let report = AnalysisReport {
            n: 2,
            stages: 1,
            signals: 1,
            diagnostics: vec![Diagnostic::new(
                Code::PessimisticMode,
                Severity::Info,
                "hint",
            )],
        };
        assert!(!report.has_failures());
        assert!(!report.is_clean());
    }
}
