//! The `O`/`L` cost matrices and the paper's Eq. 1 / Eq. 2 send-set costs.

use hbar_matrix::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Which of the paper's two send-cost equations applies to a send set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SendMode {
    /// Eq. 1: receivers may not yet have entered the operation, so the
    /// transmission pays the largest per-destination startup `max_k O_{i,J_k}`.
    General,
    /// Eq. 2: receivers are known to already await the signal (typical for
    /// departure phases), so only the local call overhead `O_ii` is paid
    /// before the per-message latencies.
    ReceiversAwaiting,
}

/// The two `P × P` matrices of the topological model (all values in seconds).
///
/// * `o[(i, j)]`, `i ≠ j` — single-message cost from `i` to `j`;
/// * `o[(i, i)]` — software overhead of a transmission-free call at `i`;
/// * `l[(i, j)]` — marginal cost of an additional simultaneous message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostMatrices {
    pub o: DenseMatrix<f64>,
    pub l: DenseMatrix<f64>,
}

impl CostMatrices {
    /// Creates zeroed matrices for `p` processes.
    pub fn zeros(p: usize) -> Self {
        CostMatrices {
            o: DenseMatrix::new(p),
            l: DenseMatrix::new(p),
        }
    }

    /// Number of processes.
    pub fn p(&self) -> usize {
        self.o.n()
    }

    /// Cost of sending one message to each rank in `targets` from `sender`
    /// (Eq. 1 or Eq. 2 depending on `mode`). An empty target set costs zero.
    ///
    /// # Panics
    /// Panics if any index is out of range or a target equals the sender.
    pub fn send_set_cost(&self, sender: usize, targets: &[usize], mode: SendMode) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        let latency: f64 = targets
            .iter()
            .map(|&j| {
                assert_ne!(j, sender, "rank {sender} cannot signal itself");
                self.l[(sender, j)]
            })
            .sum();
        let startup = match mode {
            SendMode::General => targets
                .iter()
                .map(|&j| self.o[(sender, j)])
                .fold(f64::NEG_INFINITY, f64::max),
            SendMode::ReceiversAwaiting => self.o[(sender, sender)],
        };
        startup + latency
    }

    /// Arrival time (relative to the sender starting the send set) of the
    /// `k`-th target in `targets` (0-based), consistent with
    /// [`send_set_cost`](Self::send_set_cost): running `max O` (or `O_ii`)
    /// plus the cumulative `L` of messages injected so far.
    pub fn arrival_offset(
        &self,
        sender: usize,
        targets: &[usize],
        k: usize,
        mode: SendMode,
    ) -> f64 {
        assert!(
            k < targets.len(),
            "target index {k} out of range {}",
            targets.len()
        );
        let latency: f64 = targets[..=k].iter().map(|&j| self.l[(sender, j)]).sum();
        let startup = match mode {
            SendMode::General => targets[..=k]
                .iter()
                .map(|&j| self.o[(sender, j)])
                .fold(f64::NEG_INFINITY, f64::max),
            SendMode::ReceiversAwaiting => self.o[(sender, sender)],
        };
        startup + latency
    }

    /// Restriction of both matrices to `indices` (in the given order).
    pub fn submatrices(&self, indices: &[usize]) -> Self {
        CostMatrices {
            o: self.o.submatrix(indices),
            l: self.l.submatrix(indices),
        }
    }

    /// Symmetrizes both matrices in place (paper §IV-A assumes
    /// `O_ij = O_ji`; SSS clustering requires a symmetric distance).
    pub fn symmetrize(&mut self) {
        // Preserve the diagonal of O: it has different semantics (O_ii).
        let diag: Vec<f64> = (0..self.p()).map(|i| self.o[(i, i)]).collect();
        self.o.symmetrize();
        self.l.symmetrize();
        for (i, d) in diag.into_iter().enumerate() {
            self.o[(i, i)] = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostMatrices {
        // 3 ranks: O off-diagonal row 0 = [_, 10, 50], L row 0 = [_, 1, 2].
        let o = DenseMatrix::from_vec(3, vec![0.5, 10.0, 50.0, 10.0, 0.5, 30.0, 50.0, 30.0, 0.5]);
        let l = DenseMatrix::from_vec(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 2.0, 3.0, 0.0]);
        CostMatrices { o, l }
    }

    #[test]
    fn eq1_takes_max_overhead_plus_sum_latency() {
        let c = sample();
        // t(0, [1,2]) = max(10, 50) + (1 + 2) = 53
        assert_eq!(c.send_set_cost(0, &[1, 2], SendMode::General), 53.0);
        // Single target: max over one element.
        assert_eq!(c.send_set_cost(0, &[1], SendMode::General), 11.0);
    }

    #[test]
    fn eq2_uses_local_call_overhead() {
        let c = sample();
        // t(0, [1,2]) = O_00 + (1 + 2) = 3.5
        assert_eq!(
            c.send_set_cost(0, &[1, 2], SendMode::ReceiversAwaiting),
            3.5
        );
    }

    #[test]
    fn empty_send_set_is_free() {
        let c = sample();
        assert_eq!(c.send_set_cost(0, &[], SendMode::General), 0.0);
        assert_eq!(c.send_set_cost(0, &[], SendMode::ReceiversAwaiting), 0.0);
    }

    #[test]
    fn arrival_offsets_are_cumulative_and_end_at_total() {
        let c = sample();
        let targets = [1, 2];
        // First target: max O over first message only (10) + L(0,1)=1.
        assert_eq!(c.arrival_offset(0, &targets, 0, SendMode::General), 11.0);
        // Last target's arrival equals the Eq. 1 total.
        assert_eq!(
            c.arrival_offset(0, &targets, 1, SendMode::General),
            c.send_set_cost(0, &targets, SendMode::General)
        );
        // Order matters: sending to the slow target first changes offsets.
        let rev = [2, 1];
        assert_eq!(c.arrival_offset(0, &rev, 0, SendMode::General), 52.0);
        assert_eq!(
            c.arrival_offset(0, &rev, 1, SendMode::General),
            c.send_set_cost(0, &rev, SendMode::General)
        );
    }

    #[test]
    fn arrival_offsets_monotone_in_k() {
        let c = sample();
        let targets = [2, 1];
        for mode in [SendMode::General, SendMode::ReceiversAwaiting] {
            let a0 = c.arrival_offset(0, &targets, 0, mode);
            let a1 = c.arrival_offset(0, &targets, 1, mode);
            assert!(a1 >= a0, "{mode:?}: {a1} < {a0}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot signal itself")]
    fn self_signal_panics() {
        sample().send_set_cost(1, &[1], SendMode::General);
    }

    #[test]
    fn symmetrize_preserves_oii() {
        let mut c = sample();
        c.o[(0, 1)] = 8.0; // introduce asymmetry
        c.symmetrize();
        assert_eq!(c.o[(0, 1)], 9.0);
        assert_eq!(c.o[(1, 0)], 9.0);
        assert_eq!(c.o[(0, 0)], 0.5, "diagonal must be preserved");
    }

    #[test]
    fn submatrices_restrict_consistently() {
        let c = sample();
        let s = c.submatrices(&[2, 0]);
        assert_eq!(s.p(), 2);
        assert_eq!(s.o[(0, 1)], 50.0);
        assert_eq!(s.l[(0, 1)], 2.0);
        assert_eq!(s.o[(0, 0)], 0.5);
    }
}
