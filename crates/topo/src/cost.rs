//! The `O`/`L` cost matrices, the paper's Eq. 1 / Eq. 2 send-set costs,
//! the [`CostProvider`] abstraction over dense and class-compressed
//! backings, and the versioned cost fingerprint both backings share.

use crate::metric::DistanceMetric;
use hbar_matrix::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Which of the paper's two send-cost equations applies to a send set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SendMode {
    /// Eq. 1: receivers may not yet have entered the operation, so the
    /// transmission pays the largest per-destination startup `max_k O_{i,J_k}`.
    General,
    /// Eq. 2: receivers are known to already await the signal (typical for
    /// departure phases), so only the local call overhead `O_ii` is paid
    /// before the per-message latencies.
    ReceiversAwaiting,
}

/// The two `P × P` matrices of the topological model (all values in seconds).
///
/// * `o[(i, j)]`, `i ≠ j` — single-message cost from `i` to `j`;
/// * `o[(i, i)]` — software overhead of a transmission-free call at `i`;
/// * `l[(i, j)]` — marginal cost of an additional simultaneous message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostMatrices {
    pub o: DenseMatrix<f64>,
    pub l: DenseMatrix<f64>,
}

impl CostMatrices {
    /// Creates zeroed matrices for `p` processes.
    pub fn zeros(p: usize) -> Self {
        CostMatrices {
            o: DenseMatrix::new(p),
            l: DenseMatrix::new(p),
        }
    }

    /// Number of processes.
    pub fn p(&self) -> usize {
        self.o.n()
    }

    /// Cost of sending one message to each rank in `targets` from `sender`
    /// (Eq. 1 or Eq. 2 depending on `mode`). An empty target set costs zero.
    ///
    /// # Panics
    /// Panics if any index is out of range or a target equals the sender.
    pub fn send_set_cost(&self, sender: usize, targets: &[usize], mode: SendMode) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        let latency: f64 = targets
            .iter()
            .map(|&j| {
                assert_ne!(j, sender, "rank {sender} cannot signal itself");
                self.l[(sender, j)]
            })
            .sum();
        let startup = match mode {
            SendMode::General => targets
                .iter()
                .map(|&j| self.o[(sender, j)])
                .fold(f64::NEG_INFINITY, f64::max),
            SendMode::ReceiversAwaiting => self.o[(sender, sender)],
        };
        startup + latency
    }

    /// Arrival time (relative to the sender starting the send set) of the
    /// `k`-th target in `targets` (0-based), consistent with
    /// [`send_set_cost`](Self::send_set_cost): running `max O` (or `O_ii`)
    /// plus the cumulative `L` of messages injected so far.
    pub fn arrival_offset(
        &self,
        sender: usize,
        targets: &[usize],
        k: usize,
        mode: SendMode,
    ) -> f64 {
        assert!(
            k < targets.len(),
            "target index {k} out of range {}",
            targets.len()
        );
        let latency: f64 = targets[..=k].iter().map(|&j| self.l[(sender, j)]).sum();
        let startup = match mode {
            SendMode::General => targets[..=k]
                .iter()
                .map(|&j| self.o[(sender, j)])
                .fold(f64::NEG_INFINITY, f64::max),
            SendMode::ReceiversAwaiting => self.o[(sender, sender)],
        };
        startup + latency
    }

    /// Restriction of both matrices to `indices` (in the given order).
    pub fn submatrices(&self, indices: &[usize]) -> Self {
        CostMatrices {
            o: self.o.submatrix(indices),
            l: self.l.submatrix(indices),
        }
    }

    /// Symmetrizes both matrices in place (paper §IV-A assumes
    /// `O_ij = O_ji`; SSS clustering requires a symmetric distance).
    pub fn symmetrize(&mut self) {
        // Preserve the diagonal of O: it has different semantics (O_ii).
        let diag: Vec<f64> = (0..self.p()).map(|i| self.o[(i, i)]).collect();
        self.o.symmetrize();
        self.l.symmetrize();
        for (i, d) in diag.into_iter().enumerate() {
            self.o[(i, i)] = d;
        }
    }
}

/// Version of the [`cost_fingerprint`] function itself.
///
/// The fingerprint is a **public, persistent cache key**: `hbar serve`
/// keys its schedule cache on it, and operators may key on-disk caches
/// on it too. Its value for a given matrix is therefore a stability
/// contract — any change to the hash construction (lane count, prime,
/// absorption order, fold) MUST bump this constant so old caches are
/// invalidated wholesale instead of silently poisoned. The pinned
/// golden-fingerprint regression test in `hbar-core::cost` fails on any
/// silent change.
pub const COST_FINGERPRINT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// FNV-1a over the raw bits of both cost matrices: the memo guard used
/// by `CostEvaluator::rebind` and the schedule-cache key of
/// `hbar serve` (fingerprint-equal matrices tune to bit-identical
/// schedules, so one cached artifact serves every requester).
///
/// Runs four independent FNV lanes over interleaved words and folds them
/// at the end: a single lane is a serial xor-multiply chain whose
/// multiply latency caps throughput at one word per ~3 cycles, which at
/// P = 1024 (2 M words) made the fingerprint itself a measurable slice
/// of every tune. Any changed word still changes its lane and therefore
/// the fold.
///
/// Stability: the mapping from matrix bits to fingerprint is frozen at
/// [`COST_FINGERPRINT_VERSION`]; see the version constant for the
/// contract. The fingerprint reads raw `f64` bits, so matrices that
/// differ only in NaN payload or `-0.0` vs `0.0` hash differently —
/// exactly right for a cache whose values must be bit-reproducible.
pub fn cost_fingerprint(cost: &CostMatrices) -> u64 {
    fn absorb(lanes: &mut [u64; 4], data: &[f64]) {
        let mut chunks = data.chunks_exact(4);
        for c in &mut chunks {
            for (lane, v) in lanes.iter_mut().zip(c) {
                *lane ^= v.to_bits();
                *lane = lane.wrapping_mul(FNV_PRIME);
            }
        }
        for (lane, v) in lanes.iter_mut().zip(chunks.remainder()) {
            *lane ^= v.to_bits();
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }
    let mut lanes = [
        FNV_OFFSET ^ 1,
        FNV_OFFSET ^ 2,
        FNV_OFFSET ^ 3,
        FNV_OFFSET ^ 4,
    ];
    absorb(&mut lanes, cost.o.as_slice());
    absorb(&mut lanes, cost.l.as_slice());
    let mut h = FNV_OFFSET;
    for v in [cost.p() as u64, lanes[0], lanes[1], lanes[2], lanes[3]] {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming form of [`cost_fingerprint`] for backings that never hold a
/// dense matrix: absorb all of `O` in row-major order, call
/// [`matrix_boundary`](Self::matrix_boundary), absorb all of `L`, then
/// [`finish`](Self::finish). Produces the identical value because the
/// dense absorber assigns element `e` of each matrix to lane `e mod 4`
/// (the chunked loop and its remainder both preserve that phase) and the
/// phase restarts at every matrix boundary.
#[derive(Clone, Debug)]
pub struct FingerprintStream {
    lanes: [u64; 4],
    idx: usize,
}

impl Default for FingerprintStream {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintStream {
    /// A fresh stream at the start of the `O` matrix.
    pub fn new() -> Self {
        FingerprintStream {
            lanes: [
                FNV_OFFSET ^ 1,
                FNV_OFFSET ^ 2,
                FNV_OFFSET ^ 3,
                FNV_OFFSET ^ 4,
            ],
            idx: 0,
        }
    }

    /// Absorbs one value in stream order.
    #[inline]
    pub fn absorb(&mut self, v: f64) {
        let lane = &mut self.lanes[self.idx & 3];
        *lane ^= v.to_bits();
        *lane = lane.wrapping_mul(FNV_PRIME);
        self.idx += 1;
    }

    /// Restarts the lane phase between the `O` and `L` matrices.
    pub fn matrix_boundary(&mut self) {
        self.idx = 0;
    }

    /// Folds the lanes exactly as [`cost_fingerprint`] does.
    pub fn finish(self, p: usize) -> u64 {
        let mut h = FNV_OFFSET;
        for v in [
            p as u64,
            self.lanes[0],
            self.lanes[1],
            self.lanes[2],
            self.lanes[3],
        ] {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// Read access to a `P × P` topological cost model, independent of how
/// the entries are stored.
///
/// Two backings exist: the dense [`CostMatrices`] (16 bytes per pair)
/// and the class-compressed [`CompressedCostModel`]
/// (2 bytes per pair plus per-class tables)
/// [`crate::compressed::CompressedCostModel`]. The tuner, clustering and
/// composer are generic over this trait, so a tune monomorphizes to the
/// exact same index loads it performed before the abstraction existed
/// when handed dense matrices, and to two loads (class id, table entry)
/// when handed the compressed model. `Sync` is required so the greedy
/// composer's rayon fork can share the provider across worker threads.
pub trait CostProvider: Sync {
    /// Number of processes.
    fn p(&self) -> usize;

    /// `O_ij` (`i ≠ j`: single-message cost; `i = j`: call overhead).
    fn o_at(&self, i: usize, j: usize) -> f64;

    /// `L_ij`, the marginal cost of one more simultaneous message.
    fn l_at(&self, i: usize, j: usize) -> f64;

    /// The versioned fingerprint of the dense image of this model —
    /// equal across backings whenever the decompressed entries are
    /// bit-equal, so memo guards and the serve cache key are
    /// backing-agnostic.
    fn fingerprint(&self) -> u64;

    /// The symmetrized SSS clustering metric over this model.
    fn distance_metric(&self) -> DistanceMetric;

    /// Dense restriction of both matrices to `participants` (in the
    /// given order) — the participants-only subspace the composer
    /// scores candidates in. Subspaces are small (one cluster), so they
    /// are always materialized densely.
    fn local_costs(&self, participants: &[usize]) -> CostMatrices {
        let m = participants.len();
        CostMatrices {
            o: DenseMatrix::from_fn(m, |a, b| self.o_at(participants[a], participants[b])),
            l: DenseMatrix::from_fn(m, |a, b| self.l_at(participants[a], participants[b])),
        }
    }
}

impl CostProvider for CostMatrices {
    #[inline]
    fn p(&self) -> usize {
        self.o.n()
    }

    #[inline]
    fn o_at(&self, i: usize, j: usize) -> f64 {
        self.o[(i, j)]
    }

    #[inline]
    fn l_at(&self, i: usize, j: usize) -> f64 {
        self.l[(i, j)]
    }

    fn fingerprint(&self) -> u64 {
        cost_fingerprint(self)
    }

    fn distance_metric(&self) -> DistanceMetric {
        DistanceMetric::from_costs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostMatrices {
        // 3 ranks: O off-diagonal row 0 = [_, 10, 50], L row 0 = [_, 1, 2].
        let o = DenseMatrix::from_vec(3, vec![0.5, 10.0, 50.0, 10.0, 0.5, 30.0, 50.0, 30.0, 0.5]);
        let l = DenseMatrix::from_vec(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 2.0, 3.0, 0.0]);
        CostMatrices { o, l }
    }

    #[test]
    fn eq1_takes_max_overhead_plus_sum_latency() {
        let c = sample();
        // t(0, [1,2]) = max(10, 50) + (1 + 2) = 53
        assert_eq!(c.send_set_cost(0, &[1, 2], SendMode::General), 53.0);
        // Single target: max over one element.
        assert_eq!(c.send_set_cost(0, &[1], SendMode::General), 11.0);
    }

    #[test]
    fn eq2_uses_local_call_overhead() {
        let c = sample();
        // t(0, [1,2]) = O_00 + (1 + 2) = 3.5
        assert_eq!(
            c.send_set_cost(0, &[1, 2], SendMode::ReceiversAwaiting),
            3.5
        );
    }

    #[test]
    fn empty_send_set_is_free() {
        let c = sample();
        assert_eq!(c.send_set_cost(0, &[], SendMode::General), 0.0);
        assert_eq!(c.send_set_cost(0, &[], SendMode::ReceiversAwaiting), 0.0);
    }

    #[test]
    fn arrival_offsets_are_cumulative_and_end_at_total() {
        let c = sample();
        let targets = [1, 2];
        // First target: max O over first message only (10) + L(0,1)=1.
        assert_eq!(c.arrival_offset(0, &targets, 0, SendMode::General), 11.0);
        // Last target's arrival equals the Eq. 1 total.
        assert_eq!(
            c.arrival_offset(0, &targets, 1, SendMode::General),
            c.send_set_cost(0, &targets, SendMode::General)
        );
        // Order matters: sending to the slow target first changes offsets.
        let rev = [2, 1];
        assert_eq!(c.arrival_offset(0, &rev, 0, SendMode::General), 52.0);
        assert_eq!(
            c.arrival_offset(0, &rev, 1, SendMode::General),
            c.send_set_cost(0, &rev, SendMode::General)
        );
    }

    #[test]
    fn arrival_offsets_monotone_in_k() {
        let c = sample();
        let targets = [2, 1];
        for mode in [SendMode::General, SendMode::ReceiversAwaiting] {
            let a0 = c.arrival_offset(0, &targets, 0, mode);
            let a1 = c.arrival_offset(0, &targets, 1, mode);
            assert!(a1 >= a0, "{mode:?}: {a1} < {a0}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot signal itself")]
    fn self_signal_panics() {
        sample().send_set_cost(1, &[1], SendMode::General);
    }

    #[test]
    fn symmetrize_preserves_oii() {
        let mut c = sample();
        c.o[(0, 1)] = 8.0; // introduce asymmetry
        c.symmetrize();
        assert_eq!(c.o[(0, 1)], 9.0);
        assert_eq!(c.o[(1, 0)], 9.0);
        assert_eq!(c.o[(0, 0)], 0.5, "diagonal must be preserved");
    }

    #[test]
    fn submatrices_restrict_consistently() {
        let c = sample();
        let s = c.submatrices(&[2, 0]);
        assert_eq!(s.p(), 2);
        assert_eq!(s.o[(0, 1)], 50.0);
        assert_eq!(s.l[(0, 1)], 2.0);
        assert_eq!(s.o[(0, 0)], 0.5);
    }

    /// The streaming absorber must reproduce the chunked dense
    /// fingerprint for every lane phase, including sizes whose `p²` is
    /// not a multiple of the 4-lane width.
    #[test]
    fn fingerprint_stream_matches_dense() {
        for p in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16] {
            let c = CostMatrices {
                o: DenseMatrix::from_fn(p, |i, j| (i * 31 + j) as f64 * 0.5 - 3.0),
                l: DenseMatrix::from_fn(p, |i, j| (i * 7 + j * 13) as f64 * 0.25),
            };
            let mut s = FingerprintStream::new();
            for &v in c.o.as_slice() {
                s.absorb(v);
            }
            s.matrix_boundary();
            for &v in c.l.as_slice() {
                s.absorb(v);
            }
            assert_eq!(s.finish(p), cost_fingerprint(&c), "p = {p}");
        }
    }

    #[test]
    fn provider_view_of_dense_matches_indexing() {
        let c = sample();
        assert_eq!(CostProvider::p(&c), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.o_at(i, j).to_bits(), c.o[(i, j)].to_bits());
                assert_eq!(c.l_at(i, j).to_bits(), c.l[(i, j)].to_bits());
            }
        }
        assert_eq!(c.fingerprint(), cost_fingerprint(&c));
        let local = c.local_costs(&[2, 0]);
        assert_eq!(local, c.submatrices(&[2, 0]));
    }
}
