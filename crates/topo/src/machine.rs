//! Machine descriptions and the ground-truth hardware parameters.
//!
//! The paper evaluates on two clusters of multithreaded nodes:
//!
//! * **Cluster A** — 8 nodes, each with dual 2 GHz Intel Xeon E5405
//!   quad-cores (2 sockets × 4 cores), gigabit ethernet between nodes.
//! * **Cluster B** — 10 nodes, each with dual 2.4 GHz AMD Opteron 2431
//!   hex-cores (2 sockets × 6 cores), gigabit ethernet between nodes.
//!
//! We have no such hardware (see DESIGN.md §1 substitution 1), so the
//! [`GroundTruth`] table plays the role of physics: it fixes, per link
//! class, the microscopic costs the discrete-event simulator charges for
//! every message. All profiling "measurements" in this workspace are
//! statistical estimates of this ground truth obtained by running the
//! paper's benchmark procedure on the simulator — never read directly —
//! so the methodology retains the paper's estimation noise.

use serde::{Deserialize, Serialize};

/// The interconnect layer a point-to-point message traverses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Both cores share a socket (and its cache hierarchy).
    SameSocket,
    /// Same node, different sockets (crosses the coherence interconnect).
    CrossSocket,
    /// Different nodes (crosses the cluster network, e.g. gigabit ethernet).
    InterNode,
}

impl LinkClass {
    /// All classes, ordered from most to least local.
    pub const ALL: [LinkClass; 3] = [
        LinkClass::SameSocket,
        LinkClass::CrossSocket,
        LinkClass::InterNode,
    ];
}

/// Physical placement of one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreId {
    pub node: usize,
    pub socket: usize,
    pub core: usize,
}

impl CoreId {
    /// The link class between two placements.
    ///
    /// Two distinct cores never map to `(node, socket, core)` equality; a
    /// message from a core to itself is not a link and has no class, so this
    /// is only meaningful for distinct endpoints.
    pub fn link_class(&self, other: &CoreId) -> LinkClass {
        if self.node != other.node {
            LinkClass::InterNode
        } else if self.socket != other.socket {
            LinkClass::CrossSocket
        } else {
            LinkClass::SameSocket
        }
    }
}

/// Microscopic per-message costs for one link class, in nanoseconds.
///
/// These model the serial resources a zero- or small-payload message
/// occupies on its way from sender to receiver. They are chosen so that the
/// *derived* quantities — ping-pong Hockney intercepts (≈ `O_ij`), marginal
/// multi-message costs (≈ `L_ij`), and whole-barrier times — land in the
/// ranges the paper reports (§VI: barriers of 100 µs–1.2 ms; Fig. 9:
/// intra-node `L` of 0.1–0.7 µs with a ≈4× on-/off-chip gap).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkCosts {
    /// Sender CPU occupancy to inject one message.
    pub cpu_send_ns: u64,
    /// Receiver CPU occupancy to complete one message.
    pub cpu_recv_ns: u64,
    /// Per-message occupancy of the sending node's NIC (0 for intra-node).
    pub nic_tx_ns: u64,
    /// Per-message occupancy of the receiving node's NIC (0 for intra-node).
    pub nic_rx_ns: u64,
    /// One-way propagation delay.
    pub wire_ns: u64,
    /// Transfer time per payload byte (inverse bandwidth), in ns/byte.
    pub ns_per_byte: f64,
}

/// Ground-truth hardware parameters for a whole machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    pub same_socket: LinkCosts,
    pub cross_socket: LinkCosts,
    pub inter_node: LinkCosts,
    /// CPU cost of a communication call that causes no transmission
    /// (the quantity the `O_ii` benchmark estimates).
    pub call_overhead_ns: u64,
}

impl GroundTruth {
    /// Parameters calibrated for commodity clusters of the paper's era:
    /// shared-cache cores, a coherent inter-socket link, and gigabit
    /// ethernet with a kernel TCP stack between nodes.
    pub fn commodity_cluster() -> Self {
        GroundTruth {
            same_socket: LinkCosts {
                cpu_send_ns: 100,
                cpu_recv_ns: 150,
                nic_tx_ns: 0,
                nic_rx_ns: 0,
                wire_ns: 300,
                ns_per_byte: 0.35, // ~2.9 GB/s shared-cache copy
            },
            cross_socket: LinkCosts {
                cpu_send_ns: 540,
                cpu_recv_ns: 600,
                nic_tx_ns: 0,
                nic_rx_ns: 0,
                wire_ns: 1_100,
                ns_per_byte: 0.9, // ~1.1 GB/s cross-socket copy
            },
            inter_node: LinkCosts {
                cpu_send_ns: 3_000,
                cpu_recv_ns: 5_000,
                nic_tx_ns: 6_000,
                nic_rx_ns: 6_000,
                wire_ns: 30_000,
                ns_per_byte: 9.0, // ~111 MB/s effective GbE
            },
            call_overhead_ns: 60,
        }
    }

    /// Costs for the given link class.
    pub fn link(&self, class: LinkClass) -> &LinkCosts {
        match class {
            LinkClass::SameSocket => &self.same_socket,
            LinkClass::CrossSocket => &self.cross_socket,
            LinkClass::InterNode => &self.inter_node,
        }
    }

    /// The `O_ij` value (one-message cost, seconds) an ideal noise-free
    /// ping-pong regression would recover for this class: the sum of every
    /// per-message fixed cost on the path (the call overhead is paid once
    /// per injection).
    pub fn effective_o(&self, class: LinkClass) -> f64 {
        let c = self.link(class);
        (self.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + c.nic_rx_ns
            + c.cpu_recv_ns) as f64
            * 1e-9
    }

    /// The `L_ij` value (marginal per-message cost, seconds) an ideal
    /// noise-free multi-message regression would recover: back-to-back
    /// messages pipeline through the path's stages, so the steady-state
    /// spacing is set by the slowest serial resource (sender CPU including
    /// the per-call overhead, receiver CPU, or either NIC).
    pub fn effective_l(&self, class: LinkClass) -> f64 {
        let c = self.link(class);
        (self.call_overhead_ns + c.cpu_send_ns)
            .max(c.cpu_recv_ns)
            .max(c.nic_tx_ns)
            .max(c.nic_rx_ns) as f64
            * 1e-9
    }

    /// The `O_ii` value (seconds) the no-transmission benchmark recovers.
    pub fn effective_oii(&self) -> f64 {
        self.call_overhead_ns as f64 * 1e-9
    }
}

/// Shape of a cluster: `nodes` identical nodes of `sockets` sockets with
/// `cores_per_socket` cores each, plus the ground-truth link costs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    pub nodes: usize,
    pub sockets: usize,
    pub cores_per_socket: usize,
    pub ground_truth: GroundTruth,
    /// Human-readable identifier carried into stored profiles.
    pub name: String,
}

impl MachineSpec {
    /// A machine with commodity-cluster ground truth.
    pub fn new(nodes: usize, sockets: usize, cores_per_socket: usize) -> Self {
        assert!(
            nodes > 0 && sockets > 0 && cores_per_socket > 0,
            "machine must be non-empty"
        );
        MachineSpec {
            nodes,
            sockets,
            cores_per_socket,
            ground_truth: GroundTruth::commodity_cluster(),
            name: format!("{nodes}x{sockets}x{cores_per_socket}"),
        }
    }

    /// The paper's cluster A: `nodes ≤ 8` nodes of dual quad-cores.
    pub fn dual_quad_cluster(nodes: usize) -> Self {
        assert!(nodes <= 8, "cluster A has 8 nodes");
        let mut m = Self::new(nodes, 2, 4);
        m.name = format!("dual-quad-{nodes}n");
        m
    }

    /// The paper's cluster B: `nodes ≤ 10` nodes of dual hex-cores.
    pub fn dual_hex_cluster(nodes: usize) -> Self {
        assert!(nodes <= 10, "cluster B has 10 nodes");
        let mut m = Self::new(nodes, 2, 6);
        m.name = format!("dual-hex-{nodes}n");
        m
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total cores (the maximum number of ranks with one-to-one affinity).
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// The `idx`-th core in node-major, socket-major order.
    ///
    /// # Panics
    /// Panics if `idx >= total_cores()`.
    pub fn core(&self, idx: usize) -> CoreId {
        assert!(
            idx < self.total_cores(),
            "core {idx} out of range {}",
            self.total_cores()
        );
        let per_node = self.cores_per_node();
        let node = idx / per_node;
        let within = idx % per_node;
        CoreId {
            node,
            socket: within / self.cores_per_socket,
            core: within % self.cores_per_socket,
        }
    }

    /// Link class between two cores by flat index.
    pub fn link_class(&self, a: usize, b: usize) -> LinkClass {
        self.core(a).link_class(&self.core(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_decomposition_dual_quad() {
        let m = MachineSpec::dual_quad_cluster(8);
        assert_eq!(m.total_cores(), 64);
        assert_eq!(m.cores_per_node(), 8);
        assert_eq!(
            m.core(0),
            CoreId {
                node: 0,
                socket: 0,
                core: 0
            }
        );
        assert_eq!(
            m.core(3),
            CoreId {
                node: 0,
                socket: 0,
                core: 3
            }
        );
        assert_eq!(
            m.core(4),
            CoreId {
                node: 0,
                socket: 1,
                core: 0
            }
        );
        assert_eq!(
            m.core(8),
            CoreId {
                node: 1,
                socket: 0,
                core: 0
            }
        );
        assert_eq!(
            m.core(63),
            CoreId {
                node: 7,
                socket: 1,
                core: 3
            }
        );
    }

    #[test]
    fn core_decomposition_dual_hex() {
        let m = MachineSpec::dual_hex_cluster(10);
        assert_eq!(m.total_cores(), 120);
        assert_eq!(
            m.core(11),
            CoreId {
                node: 0,
                socket: 1,
                core: 5
            }
        );
        assert_eq!(
            m.core(12),
            CoreId {
                node: 1,
                socket: 0,
                core: 0
            }
        );
    }

    #[test]
    fn link_classes() {
        let m = MachineSpec::dual_quad_cluster(2);
        assert_eq!(m.link_class(0, 1), LinkClass::SameSocket);
        assert_eq!(m.link_class(0, 4), LinkClass::CrossSocket);
        assert_eq!(m.link_class(0, 8), LinkClass::InterNode);
        assert_eq!(m.link_class(8, 0), LinkClass::InterNode);
    }

    #[test]
    fn ground_truth_hierarchy_is_ordered() {
        let gt = GroundTruth::commodity_cluster();
        let o: Vec<f64> = LinkClass::ALL.iter().map(|&c| gt.effective_o(c)).collect();
        assert!(
            o[0] < o[1] && o[1] < o[2],
            "O must grow with distance: {o:?}"
        );
        let l: Vec<f64> = LinkClass::ALL.iter().map(|&c| gt.effective_l(c)).collect();
        assert!(
            l[0] < l[1] && l[1] < l[2],
            "L must grow with distance: {l:?}"
        );
    }

    #[test]
    fn ground_truth_matches_paper_magnitudes() {
        let gt = GroundTruth::commodity_cluster();
        // GbE sync-signal one-way cost ~tens of µs.
        let o_inter = gt.effective_o(LinkClass::InterNode);
        assert!((20e-6..100e-6).contains(&o_inter), "{o_inter}");
        // Fig. 9: intra-node L in the 0.1–0.7 µs range, ~4x on/off chip gap.
        let l_on = gt.effective_l(LinkClass::SameSocket);
        let l_off = gt.effective_l(LinkClass::CrossSocket);
        assert!((0.05e-6..0.3e-6).contains(&l_on), "{l_on}");
        assert!((0.2e-6..0.8e-6).contains(&l_off), "{l_off}");
        let ratio = l_off / l_on;
        assert!((2.0..6.0).contains(&ratio), "on/off chip gap ratio {ratio}");
    }

    #[test]
    fn effective_oii_matches_call_overhead() {
        let gt = GroundTruth::commodity_cluster();
        assert!((gt.effective_oii() - 60e-9).abs() < 1e-12);
        // O_ii is far below any off-diagonal O: Eq. 2 must be cheaper than Eq. 1.
        assert!(gt.effective_oii() < gt.effective_o(LinkClass::SameSocket));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_out_of_range_panics() {
        MachineSpec::new(1, 1, 2).core(2);
    }

    #[test]
    fn serde_roundtrip() {
        let m = MachineSpec::dual_hex_cluster(3);
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
