//! Least-squares regression and basic statistics for model extraction.
//!
//! The paper's benchmark procedure (§IV-A) fits straight lines to two
//! sample families and reads model parameters off the fit:
//!
//! * `O_ij` — intercept of transmission time vs message size (the Hockney
//!   startup-cost estimate), over sizes `1 … 2^20` bytes, 25 repetitions
//!   per sample point;
//! * `L_ij` — gradient of completion time vs number of simultaneous
//!   messages, over 1 … 32 messages, 25 repetitions per point.

/// Result of an ordinary least-squares line fit `y ≈ intercept + slope · x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    pub intercept: f64,
    pub slope: f64,
    /// Coefficient of determination (1 for a perfect fit; 0 when the fit
    /// explains nothing; can be negative only for degenerate inputs).
    pub r_squared: f64,
}

/// Fits a least-squares line through `(x, y)` points.
///
/// # Panics
/// Panics if fewer than two points are given or all `x` are identical.
pub fn least_squares(points: &[(f64, f64)]) -> LineFit {
    assert!(
        points.len() >= 2,
        "need at least two points, got {}",
        points.len()
    );
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "all x values are identical; cannot fit a line");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LineFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Arithmetic mean.
///
/// # Panics
/// Panics on an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "mean of empty sample set");
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (n−1 denominator); zero for a single sample.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|&s| (s - m) * (s - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Median (of a copy; input order preserved).
///
/// # Panics
/// Panics on an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample set");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The benchmark message sizes of §IV-A: powers of two from 1 to 2^20 bytes.
pub fn hockney_message_sizes() -> Vec<usize> {
    (0..=20).map(|e| 1usize << e).collect()
}

/// The multi-message counts of §IV-A: 1 through `max_messages` (paper: 32).
pub fn multi_message_counts(max_messages: usize) -> Vec<usize> {
    (1..=max_messages).collect()
}

/// Extracts the Hockney startup estimate (`O_ij`) from
/// `(size_bytes, seconds)` samples: the intercept of the least-squares fit,
/// clamped at zero (noise can push a tiny intercept negative).
pub fn hockney_intercept(samples: &[(f64, f64)]) -> f64 {
    least_squares(samples).intercept.max(0.0)
}

/// Extracts the marginal message latency (`L_ij`) from
/// `(message_count, seconds)` samples: the gradient of the fit, clamped at
/// zero.
pub fn latency_gradient(samples: &[(f64, f64)]) -> f64 {
    least_squares(samples).slope.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|x| (x as f64, 3.0 + 2.0 * x as f64)).collect();
        let fit = least_squares(&pts);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovered_approximately() {
        // Symmetric noise: alternate ±0.5 around y = 1 + 0.1 x.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|x| {
                let noise = if x % 2 == 0 { 0.5 } else { -0.5 };
                (x as f64, 1.0 + 0.1 * x as f64 + noise)
            })
            .collect();
        let fit = least_squares(&pts);
        assert!((fit.intercept - 1.0).abs() < 0.2, "{fit:?}");
        assert!((fit.slope - 0.1).abs() < 0.01, "{fit:?}");
        assert!(fit.r_squared > 0.8);
    }

    #[test]
    fn flat_data_has_zero_slope() {
        let pts: Vec<(f64, f64)> = (0..5).map(|x| (x as f64, 7.0)).collect();
        let fit = least_squares(&pts);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 7.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        least_squares(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_data_panics() {
        least_squares(&[(1.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn statistics_basics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&s), 2.5);
        assert!((stddev(&s) - 1.2909944487).abs() < 1e-9);
        assert_eq!(median(&s), 2.5);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn benchmark_schedules_match_paper() {
        let sizes = hockney_message_sizes();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&(1 << 20)));
        assert_eq!(sizes.len(), 21);
        let counts = multi_message_counts(32);
        assert_eq!(counts.first(), Some(&1));
        assert_eq!(counts.last(), Some(&32));
    }

    #[test]
    fn extraction_clamps_negative_estimates() {
        // A steeply negative intercept (non-physical) clamps to zero.
        let pts = [(1.0, 0.0), (2.0, 10.0), (3.0, 20.0)];
        assert_eq!(hockney_intercept(&pts), 0.0);
        // A negative slope clamps to zero.
        let pts2 = [(1.0, 5.0), (2.0, 4.0), (3.0, 3.0)];
        assert_eq!(latency_gradient(&pts2), 0.0);
    }

    #[test]
    fn hockney_extraction_on_synthetic_pingpong() {
        // t(s) = 50 µs + s · 9 ns: intercept recovers the 50 µs startup.
        let pts: Vec<(f64, f64)> = hockney_message_sizes()
            .iter()
            .map(|&s| (s as f64, 50e-6 + s as f64 * 9e-9))
            .collect();
        let o = hockney_intercept(&pts);
        assert!((o - 50e-6).abs() < 1e-9, "{o}");
    }
}
