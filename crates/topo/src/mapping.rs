//! Rank → core placements.
//!
//! The paper controls process locality with `sched_setaffinity` plus "a
//! small initializer routine to provide a one-to-one mapping between MPI
//! rank and processing core on a system-wide basis" (§III). Predictions are
//! only valid when profiling and execution use the same placement, so the
//! placement is a first-class input here.
//!
//! [`RankMapping::RoundRobin`] reproduces the placement of the paper's
//! batch scheduler, which "maps processes to nodes in a round-robin
//! fashion" — the source of the odd/even oscillation of the dissemination
//! barrier in Fig. 5 (9–16 process cases).

use crate::machine::{CoreId, MachineSpec};
use serde::{Deserialize, Serialize};

/// A placement policy assigning each of `P` ranks to a distinct core.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankMapping {
    /// Rank `r` goes to node `r mod nodes_used`, filling each node's cores
    /// in order; `nodes_used = ceil(P / cores_per_node)` capped at the
    /// machine's node count. This mirrors the paper's cluster scheduler.
    RoundRobin,
    /// Rank `r` goes to node `r / cores_per_node` (consecutive ranks share
    /// a node, then a socket).
    Block,
    /// Explicit placement: `rank r` is pinned to flat core `cores[r]`.
    Custom(Vec<usize>),
}

impl RankMapping {
    /// Flat core indices of ranks `0..p`.
    ///
    /// # Panics
    /// Panics if `p` exceeds the machine's capacity, or if a custom mapping
    /// is shorter than `p` or contains duplicate/out-of-range cores.
    pub fn place(&self, machine: &MachineSpec, p: usize) -> Vec<usize> {
        assert!(
            p <= machine.total_cores(),
            "{p} ranks exceed machine capacity {}",
            machine.total_cores()
        );
        let flat = match self {
            RankMapping::RoundRobin => {
                let per_node = machine.cores_per_node();
                let nodes_used = p.div_ceil(per_node).min(machine.nodes).max(1);
                (0..p)
                    .map(|r| {
                        let node = r % nodes_used;
                        let slot = r / nodes_used;
                        assert!(
                            slot < per_node,
                            "round-robin overflow: rank {r} needs slot {slot} on node {node}"
                        );
                        node * per_node + slot
                    })
                    .collect::<Vec<_>>()
            }
            RankMapping::Block => (0..p).collect(),
            RankMapping::Custom(cores) => {
                assert!(
                    cores.len() >= p,
                    "custom mapping covers {} ranks, need {p}",
                    cores.len()
                );
                cores[..p].to_vec()
            }
        };
        let mut seen = vec![false; machine.total_cores()];
        for &c in &flat {
            assert!(c < machine.total_cores(), "core {c} out of range");
            assert!(!seen[c], "core {c} assigned to two ranks");
            seen[c] = true;
        }
        flat
    }

    /// Physical [`CoreId`]s of ranks `0..p`.
    pub fn cores(&self, machine: &MachineSpec, p: usize) -> Vec<CoreId> {
        self.place(machine, p)
            .iter()
            .map(|&c| machine.core(c))
            .collect()
    }

    /// Number of distinct nodes occupied by ranks `0..p`.
    pub fn nodes_used(&self, machine: &MachineSpec, p: usize) -> usize {
        let mut nodes: Vec<usize> = self.cores(machine, p).iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::LinkClass;

    #[test]
    fn block_fills_nodes_in_order() {
        let m = MachineSpec::dual_quad_cluster(2);
        let cores = RankMapping::Block.cores(&m, 10);
        assert_eq!(cores[0].node, 0);
        assert_eq!(cores[7].node, 0);
        assert_eq!(cores[8].node, 1);
        assert_eq!(cores[9].node, 1);
    }

    #[test]
    fn round_robin_spreads_across_used_nodes() {
        let m = MachineSpec::dual_quad_cluster(8);
        // 16 ranks need 2 nodes; round-robin alternates between them.
        let cores = RankMapping::RoundRobin.cores(&m, 16);
        for (r, c) in cores.iter().enumerate() {
            assert_eq!(c.node, r % 2, "rank {r}");
        }
        assert_eq!(RankMapping::RoundRobin.nodes_used(&m, 16), 2);
    }

    #[test]
    fn round_robin_adjacent_ranks_are_remote() {
        // The property behind the dissemination odd/even artifact: with RR
        // over >1 node, offset-1 neighbours always live on different nodes.
        let m = MachineSpec::dual_quad_cluster(8);
        let cores = RankMapping::RoundRobin.cores(&m, 22);
        assert_eq!(RankMapping::RoundRobin.nodes_used(&m, 22), 3);
        for r in 0..21 {
            assert_eq!(cores[r].link_class(&cores[r + 1]), LinkClass::InterNode);
        }
    }

    #[test]
    fn round_robin_multiple_of_node_size_is_balanced() {
        let m = MachineSpec::dual_hex_cluster(10);
        let cores = RankMapping::RoundRobin.cores(&m, 60); // 5 nodes × 12
        let mut per_node = [0usize; 10];
        for c in &cores {
            per_node[c.node] += 1;
        }
        assert_eq!(&per_node[..5], &[12; 5]);
        assert_eq!(&per_node[5..], &[0; 5]);
    }

    #[test]
    fn round_robin_single_node_case() {
        let m = MachineSpec::dual_quad_cluster(8);
        let cores = RankMapping::RoundRobin.cores(&m, 8);
        assert!(cores.iter().all(|c| c.node == 0));
        // Slots fill socket 0 first, then socket 1.
        assert_eq!(cores[3].socket, 0);
        assert_eq!(cores[4].socket, 1);
    }

    #[test]
    fn custom_mapping_is_honoured() {
        let m = MachineSpec::new(2, 1, 2);
        let mapping = RankMapping::Custom(vec![3, 0, 2]);
        let flat = mapping.place(&m, 3);
        assert_eq!(flat, vec![3, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "exceed machine capacity")]
    fn too_many_ranks_panics() {
        let m = MachineSpec::new(1, 1, 2);
        RankMapping::Block.place(&m, 3);
    }

    #[test]
    #[should_panic(expected = "assigned to two ranks")]
    fn duplicate_custom_core_panics() {
        let m = MachineSpec::new(1, 1, 4);
        RankMapping::Custom(vec![1, 1]).place(&m, 2);
    }

    #[test]
    fn full_machine_round_robin_is_a_permutation() {
        let m = MachineSpec::dual_quad_cluster(8);
        let mut flat = RankMapping::RoundRobin.place(&m, 64);
        flat.sort_unstable();
        assert_eq!(flat, (0..64).collect::<Vec<_>>());
    }
}
