//! Class-compressed cost model: the `|P|²` memory-wall fix.
//!
//! The dense [`CostMatrices`] spend 16 bytes per ordered pair (`O` and
//! `L` as `f64`), which at P = 16384 is 4 GiB before the tuner has done
//! any work — the scaling bound flagged after the decomposed sweep made
//! *measuring* such machines cheap. But the sweep's own premise is that
//! a real machine only has a handful of distinct pair behaviours
//! (interconnect class × hop signature × socket relation × noise
//! regime): the dense matrices are a few dozen distinct `(O, L)` values
//! stamped 268 million times.
//!
//! [`CompressedCostModel`] stores that structure directly: one `u16`
//! class id per ordered pair (2 bytes — 512 MiB at P = 16384) plus two
//! per-class value tables. Exact mode round-trips bit-identically to
//! dense — every accessor returns the same `f64` bits — so the
//! fingerprint, the evaluator's scores, and full tunes are equal across
//! backings, which the parity proptests assert at P ≤ 256.
//!
//! Diagonal cells (`O_ii` call overhead, `L_ii = 0` by convention) get
//! class ids disjoint from off-diagonal cells even when their values
//! collide. That invariant is what lets the derived
//! [`DistanceMetric`] share this grid zero-copy: the per-class distance
//! table maps diagonal classes to `0.0` and off-diagonal classes to the
//! symmetrized `(O_c + O_c) / 2` without consulting positions.

use crate::cost::{CostMatrices, CostProvider, FingerprintStream};
use crate::metric::DistanceMetric;
use hbar_matrix::DenseMatrix;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Maximum number of distinct pair classes a `u16` grid can address.
pub const MAX_CLASSES: usize = 1 << 16;

/// Why a compressed model could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// The model needs more classes than a `u16` grid can address.
    ClassOverflow {
        /// Distinct classes required (> [`MAX_CLASSES`]).
        needed: usize,
    },
    /// `table_o` and `table_l` disagree in length.
    TableMismatch { o: usize, l: usize },
    /// The grid is not `p × p`.
    GridShape { p: usize, len: usize },
    /// A grid cell references a class past the value tables.
    ClassOutOfRange {
        cell: usize,
        class: u16,
        classes: usize,
    },
    /// A class id appears both on and off the diagonal, so the metric
    /// could not tell `d(i, i) = 0` from a real distance.
    DiagClassShared { class: u16 },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::ClassOverflow { needed } => write!(
                f,
                "model needs {needed} pair classes, more than the {MAX_CLASSES} a u16 grid holds"
            ),
            CompressError::TableMismatch { o, l } => {
                write!(f, "value tables disagree: {o} O entries vs {l} L entries")
            }
            CompressError::GridShape { p, len } => {
                write!(f, "class grid has {len} cells, expected {p}x{p}")
            }
            CompressError::ClassOutOfRange {
                cell,
                class,
                classes,
            } => write!(
                f,
                "grid cell {cell} references class {class}, but only {classes} classes exist"
            ),
            CompressError::DiagClassShared { class } => write!(
                f,
                "class {class} is used both on and off the diagonal; diagonal cells must \
                 have dedicated classes"
            ),
        }
    }
}

impl std::error::Error for CompressError {}

/// A `P × P` cost model stored as a `u16` class grid plus per-class
/// `(O, L)` value tables — 2 bytes per ordered pair instead of 16.
///
/// See the module docs for the representation contract. Construction
/// computes the versioned cost fingerprint of the dense image once (two
/// streamed passes over the grid), so [`CostProvider::fingerprint`] and
/// every warm-tune rebind afterwards are O(1).
#[derive(Clone, Debug)]
pub struct CompressedCostModel {
    p: usize,
    grid: Arc<Vec<u16>>,
    table_o: Vec<f64>,
    table_l: Vec<f64>,
    /// Per class: does it appear on the diagonal?
    diag_class: Vec<bool>,
    symmetric: bool,
    fingerprint: u64,
}

impl CompressedCostModel {
    /// Builds from an explicit grid and value tables — the sweep's
    /// constructor, which assembles the grid tile-at-a-time from
    /// `classify_pairs` buckets without ever materializing a dense
    /// matrix. Validates the full representation contract.
    pub fn from_parts(
        p: usize,
        grid: Vec<u16>,
        table_o: Vec<f64>,
        table_l: Vec<f64>,
    ) -> Result<Self, CompressError> {
        if table_o.len() != table_l.len() {
            return Err(CompressError::TableMismatch {
                o: table_o.len(),
                l: table_l.len(),
            });
        }
        let classes = table_o.len();
        if classes > MAX_CLASSES {
            return Err(CompressError::ClassOverflow { needed: classes });
        }
        if grid.len() != p * p {
            return Err(CompressError::GridShape { p, len: grid.len() });
        }
        let mut on_diag = vec![false; classes];
        let mut off_diag = vec![false; classes];
        for (cell, &c) in grid.iter().enumerate() {
            let class = c as usize;
            if class >= classes {
                return Err(CompressError::ClassOutOfRange {
                    cell,
                    class: c,
                    classes,
                });
            }
            if cell / p == cell % p {
                on_diag[class] = true;
            } else {
                off_diag[class] = true;
            }
        }
        if let Some(class) = (0..classes).find(|&c| on_diag[c] && off_diag[c]) {
            return Err(CompressError::DiagClassShared {
                class: class as u16,
            });
        }
        let symmetric = (0..p).all(|i| (i + 1..p).all(|j| grid[i * p + j] == grid[j * p + i]));
        let fingerprint = Self::stream_fingerprint(p, &grid, &table_o, &table_l);
        Ok(CompressedCostModel {
            p,
            grid: Arc::new(grid),
            table_o,
            table_l,
            diag_class: on_diag,
            symmetric,
            fingerprint,
        })
    }

    /// Compresses dense matrices exactly: cells with bit-identical
    /// `(O, L)` values share a class (diagonal cells kept in their own
    /// class space). Fails only if the matrices have more distinct value
    /// pairs than [`MAX_CLASSES`] — i.e. the model is effectively
    /// incompressible and dense storage is the honest representation.
    pub fn from_dense(cost: &CostMatrices) -> Result<Self, CompressError> {
        let p = cost.p();
        let o = cost.o.as_slice();
        let l = cost.l.as_slice();
        let mut index: HashMap<(u64, u64, bool), u16> = HashMap::new();
        let mut grid = vec![0u16; p * p];
        let mut table_o = Vec::new();
        let mut table_l = Vec::new();
        for i in 0..p {
            for j in 0..p {
                let cell = i * p + j;
                let key = (o[cell].to_bits(), l[cell].to_bits(), i == j);
                let next = table_o.len();
                let class = *index.entry(key).or_insert_with(|| {
                    table_o.push(o[cell]);
                    table_l.push(l[cell]);
                    // The cast wraps past MAX_CLASSES; the overflow check
                    // below rejects the model before the grid is used.
                    next as u16
                });
                grid[cell] = class;
            }
        }
        if table_o.len() > MAX_CLASSES {
            return Err(CompressError::ClassOverflow {
                needed: table_o.len(),
            });
        }
        Self::from_parts(p, grid, table_o, table_l)
    }

    /// The fingerprint of the dense image, streamed off the grid so the
    /// image is never materialized. Bit-equal decompressed entries give
    /// the exact [`crate::cost::cost_fingerprint`] value.
    fn stream_fingerprint(p: usize, grid: &[u16], table_o: &[f64], table_l: &[f64]) -> u64 {
        let mut s = FingerprintStream::new();
        for &c in grid {
            s.absorb(table_o[c as usize]);
        }
        s.matrix_boundary();
        for &c in grid {
            s.absorb(table_l[c as usize]);
        }
        s.finish(p)
    }

    /// Number of processes.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of distinct pair classes (diagonal classes included).
    pub fn classes(&self) -> usize {
        self.table_o.len()
    }

    /// Whether the class grid is symmetric (`class(i,j) == class(j,i)`).
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// The shared class grid (row-major, `p × p`).
    pub fn grid(&self) -> &Arc<Vec<u16>> {
        &self.grid
    }

    /// Heap bytes held by this model (grid counted once even though the
    /// derived metric may share it).
    pub fn heap_bytes(&self) -> usize {
        self.grid.len() * std::mem::size_of::<u16>()
            + (self.table_o.len() + self.table_l.len()) * std::mem::size_of::<f64>()
            + self.diag_class.len()
    }

    /// Decompresses to dense matrices — bit-identical to the model's
    /// image, used by parity assertions and by consumers that genuinely
    /// need dense storage (e.g. wire serialization of small models).
    pub fn to_dense(&self) -> CostMatrices {
        let p = self.p;
        CostMatrices {
            o: DenseMatrix::from_fn(p, |i, j| self.table_o[self.grid[i * p + j] as usize]),
            l: DenseMatrix::from_fn(p, |i, j| self.table_l[self.grid[i * p + j] as usize]),
        }
    }
}

impl CostProvider for CompressedCostModel {
    #[inline]
    fn p(&self) -> usize {
        self.p
    }

    #[inline]
    fn o_at(&self, i: usize, j: usize) -> f64 {
        self.table_o[self.grid[i * self.p + j] as usize]
    }

    #[inline]
    fn l_at(&self, i: usize, j: usize) -> f64 {
        self.table_l[self.grid[i * self.p + j] as usize]
    }

    #[inline]
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The clustering metric. For a symmetric grid (every sweep-built
    /// model) this shares the class grid zero-copy and only builds a
    /// per-class distance table: `(O_c + O_c) / 2` is bit-equal to what
    /// the dense path computes per cell, and diagonal classes map to
    /// `0.0` exactly as the dense metric zeroes its diagonal. An
    /// asymmetric grid falls back to materializing the dense metric with
    /// the identical tiled arithmetic (`O(p²)` memory — but an
    /// asymmetric model compressed poorly to begin with).
    fn distance_metric(&self) -> DistanceMetric {
        if self.symmetric {
            let table = self
                .table_o
                .iter()
                .zip(&self.diag_class)
                .map(|(&o, &diag)| if diag { 0.0 } else { (o + o) / 2.0 })
                .collect();
            return DistanceMetric::from_classes(self.p, Arc::clone(&self.grid), table);
        }
        const TILE: usize = 64;
        let p = self.p;
        let mut data = vec![0.0f64; p * p];
        for bi in (0..p).step_by(TILE) {
            for bj in (bi..p).step_by(TILE) {
                let ei = (bi + TILE).min(p);
                let ej = (bj + TILE).min(p);
                for i in bi..ei {
                    for j in bj.max(i + 1)..ej {
                        let v = (self.o_at(i, j) + self.o_at(j, i)) / 2.0;
                        data[i * p + j] = v;
                        data[j * p + i] = v;
                    }
                }
            }
        }
        DistanceMetric::from_dense_unchecked(DenseMatrix::from_vec(p, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_fingerprint;
    use crate::machine::MachineSpec;
    use crate::mapping::RankMapping;
    use crate::profile::TopologyProfile;

    fn ground_truth_costs(nodes: usize) -> CostMatrices {
        let machine = MachineSpec::dual_quad_cluster(nodes);
        TopologyProfile::from_ground_truth(&machine, &RankMapping::Block).cost
    }

    fn assert_bits_equal(a: &CostMatrices, b: &CostMatrices) {
        assert_eq!(a.p(), b.p());
        for (x, y) in a.o.as_slice().iter().zip(b.o.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.l.as_slice().iter().zip(b.l.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn round_trips_ground_truth_bit_identically() {
        let cost = ground_truth_costs(2);
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        assert_bits_equal(&model.to_dense(), &cost);
        // A 16-rank ground-truth machine has a handful of behaviours,
        // not 256 — the point of the representation.
        assert!(model.classes() <= 8, "classes = {}", model.classes());
        assert!(model.is_symmetric());
        for i in 0..cost.p() {
            for j in 0..cost.p() {
                assert_eq!(model.o_at(i, j).to_bits(), cost.o[(i, j)].to_bits());
                assert_eq!(model.l_at(i, j).to_bits(), cost.l[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn fingerprint_matches_dense() {
        let cost = ground_truth_costs(3);
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        assert_eq!(model.fingerprint(), cost_fingerprint(&cost));
        assert_eq!(CostProvider::fingerprint(&cost), model.fingerprint());
    }

    #[test]
    fn distance_metric_matches_dense_bitwise() {
        let cost = ground_truth_costs(2);
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        let dense = DistanceMetric::from_costs(&cost);
        let compressed = model.distance_metric();
        let p = cost.p();
        for i in 0..p {
            for j in 0..p {
                assert_eq!(
                    compressed.dist(i, j).to_bits(),
                    dense.dist(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
        assert_eq!(compressed.diameter().to_bits(), dense.diameter().to_bits());
        let members: Vec<usize> = (0..p).step_by(3).collect();
        assert_eq!(
            compressed.diameter_of(&members).to_bits(),
            dense.diameter_of(&members).to_bits()
        );
    }

    #[test]
    fn asymmetric_model_falls_back_to_dense_metric() {
        let mut cost = ground_truth_costs(2);
        cost.o[(0, 5)] *= 1.5; // break symmetry
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        assert!(!model.is_symmetric());
        let dense = DistanceMetric::from_costs(&cost);
        let compressed = model.distance_metric();
        for i in 0..cost.p() {
            for j in 0..cost.p() {
                assert_eq!(compressed.dist(i, j).to_bits(), dense.dist(i, j).to_bits());
            }
        }
    }

    #[test]
    fn local_costs_match_submatrices() {
        let cost = ground_truth_costs(2);
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        let participants = [3usize, 0, 9, 12];
        assert_bits_equal(
            &model.local_costs(&participants),
            &cost.submatrices(&participants),
        );
    }

    #[test]
    fn diag_values_colliding_with_pairs_still_get_own_classes() {
        // O_ii equals an off-diagonal O and L is zero everywhere: without
        // the diagonal flag in the dedup key these would share a class
        // and the shared-grid metric would zero real distances.
        let cost = CostMatrices {
            o: DenseMatrix::filled(4, 7.0),
            l: DenseMatrix::new(4),
        };
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        assert_eq!(model.classes(), 2);
        let metric = model.distance_metric();
        assert_eq!(metric.dist(0, 0), 0.0);
        assert_eq!(metric.dist(0, 1), 7.0);
    }

    #[test]
    fn incompressible_model_overflows() {
        // 257² distinct O values -> 66049 classes > 65536.
        let p = 257;
        let cost = CostMatrices {
            o: DenseMatrix::from_fn(p, |i, j| (i * p + j) as f64),
            l: DenseMatrix::new(p),
        };
        match CompressedCostModel::from_dense(&cost) {
            Err(CompressError::ClassOverflow { needed }) => assert_eq!(needed, p * p),
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn from_parts_validates_the_contract() {
        let err = |r: Result<CompressedCostModel, CompressError>| r.expect_err("must reject");
        assert_eq!(
            err(CompressedCostModel::from_parts(
                2,
                vec![0; 3],
                vec![0.0],
                vec![0.0]
            )),
            CompressError::GridShape { p: 2, len: 3 }
        );
        assert_eq!(
            err(CompressedCostModel::from_parts(
                1,
                vec![1],
                vec![0.0],
                vec![0.0]
            )),
            CompressError::ClassOutOfRange {
                cell: 0,
                class: 1,
                classes: 1
            }
        );
        assert_eq!(
            err(CompressedCostModel::from_parts(
                1,
                vec![0],
                vec![0.0, 1.0],
                vec![0.0]
            )),
            CompressError::TableMismatch { o: 2, l: 1 }
        );
        // Class 0 on both the diagonal and off it.
        assert_eq!(
            err(CompressedCostModel::from_parts(
                2,
                vec![0, 0, 0, 0],
                vec![1.0],
                vec![0.0]
            )),
            CompressError::DiagClassShared { class: 0 }
        );
    }

    #[test]
    fn heap_bytes_reflect_grid_compression() {
        let cost = ground_truth_costs(8); // P = 128
        let model = CompressedCostModel::from_dense(&cost).expect("compresses");
        let dense_bytes = 2 * cost.p() * cost.p() * std::mem::size_of::<f64>();
        assert!(
            model.heap_bytes() * 4 < dense_bytes,
            "compressed {} vs dense {dense_bytes}",
            model.heap_bytes()
        );
    }
}
