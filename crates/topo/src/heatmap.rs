//! Text heat maps of cost matrices (Fig. 9 of the paper).
//!
//! Fig. 9 renders the `L` matrix of one dual quad-core node as a grey-coded
//! heat map: two darker 4×4 blocks on the diagonal (on-chip pairs) against a
//! lighter background (cross-socket pairs), with roughly a factor 4 between
//! them. [`render`] produces the same picture with unicode shade characters,
//! and [`block_means`] quantifies the block structure so tests and the
//! experiment harness can assert the ratio.

use hbar_matrix::DenseMatrix;

/// Shade ramp from low (light) to high (dark) values.
const SHADES: [char; 5] = ['·', '░', '▒', '▓', '█'];

/// Renders a matrix as a grid of shade characters, scaling between the
/// minimum and maximum off-diagonal entries. Diagonal cells print as space
/// (they are not link costs).
pub fn render(m: &DenseMatrix<f64>) -> String {
    let lo = m.min_off_diagonal().unwrap_or(0.0);
    let hi = m.max_off_diagonal().unwrap_or(1.0);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for i in 0..m.n() {
        for j in 0..m.n() {
            if i == j {
                out.push(' ');
            } else {
                let t = ((m[(i, j)] - lo) / span).clamp(0.0, 1.0);
                let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx]);
            }
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    out
}

/// Renders with axis labels and a scale legend, for terminal output.
pub fn render_labelled(m: &DenseMatrix<f64>, title: &str) -> String {
    let lo = m.min_off_diagonal().unwrap_or(0.0);
    let hi = m.max_off_diagonal().unwrap_or(0.0);
    let body = render(m);
    let mut out = format!("{title}\n");
    out.push_str("    ");
    for j in 0..m.n() {
        out.push_str(&format!("{} ", j % 10));
    }
    out.pop();
    out.push('\n');
    for (i, line) in body.lines().enumerate() {
        out.push_str(&format!("{i:>3} {line}\n"));
    }
    out.push_str(&format!(
        "scale: {} = {:.3e} s … {} = {:.3e} s\n",
        SHADES[0],
        lo,
        SHADES[SHADES.len() - 1],
        hi
    ));
    out
}

/// Mean of the off-diagonal entries inside equally sized diagonal blocks
/// (`on`), and of everything outside them (`off`). With `block = 4` on an
/// 8-rank single-node profile this measures Fig. 9's on-chip vs off-chip
/// `L` values.
///
/// # Panics
/// Panics if `block` does not divide the matrix dimension.
pub fn block_means(m: &DenseMatrix<f64>, block: usize) -> BlockMeans {
    assert!(
        block > 0 && m.n().is_multiple_of(block),
        "block {block} must divide {}",
        m.n()
    );
    let on = m
        .mean_where(|i, j| i != j && i / block == j / block)
        .unwrap_or(0.0);
    let off = m.mean_where(|i, j| i / block != j / block).unwrap_or(0.0);
    BlockMeans { on, off }
}

/// Result of [`block_means`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockMeans {
    /// Mean off-diagonal value inside diagonal blocks (on-chip pairs).
    pub on: f64,
    /// Mean value outside diagonal blocks (off-chip pairs).
    pub off: f64,
}

impl BlockMeans {
    /// `off / on`; infinite if `on` is zero.
    pub fn ratio(&self) -> f64 {
        if self.on == 0.0 {
            f64::INFINITY
        } else {
            self.off / self.on
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;
    use crate::mapping::RankMapping;
    use crate::profile::TopologyProfile;

    #[test]
    fn render_shapes() {
        let m = DenseMatrix::from_fn(3, |i, j| if i == j { 0.0 } else { (i + j) as f64 });
        let s = render(&m);
        assert_eq!(s.lines().count(), 3);
        for line in s.lines() {
            assert_eq!(
                line.chars().filter(|c| *c != ' ').count()
                    + line.chars().filter(|c| *c == ' ').count(),
                5
            );
        }
        // Diagonal is blank.
        assert_eq!(s.lines().next().unwrap().chars().next(), Some(' '));
    }

    #[test]
    fn render_extremes_use_ramp_ends() {
        let mut m = DenseMatrix::new(2);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 2.0;
        let s = render(&m);
        assert!(s.contains(SHADES[0]));
        assert!(s.contains(SHADES[SHADES.len() - 1]));
    }

    #[test]
    fn fig9_block_structure_on_single_node() {
        // One dual quad-core node, block mapping: ranks 0–3 on socket 0,
        // 4–7 on socket 1 — exactly the Fig. 9 situation.
        let machine = MachineSpec::dual_quad_cluster(1);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let bm = block_means(&prof.cost.l, 4);
        assert!(bm.on < bm.off, "on-chip L must be cheaper");
        let ratio = bm.ratio();
        assert!((2.0..6.0).contains(&ratio), "Fig. 9 shows ~4x, got {ratio}");
    }

    #[test]
    fn labelled_render_contains_scale() {
        let machine = MachineSpec::dual_quad_cluster(1);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let s = render_labelled(&prof.cost.l, "L matrix");
        assert!(s.starts_with("L matrix\n"));
        assert!(s.contains("scale:"));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn block_means_requires_divisibility() {
        block_means(&DenseMatrix::new(5), 4);
    }
}
