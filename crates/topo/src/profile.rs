//! On-disk topology profiles.
//!
//! The method overview (Fig. 1 of the paper) decouples profiling from
//! tuning by "storing the collected maps on disk", so candidate algorithms
//! can be costed off-line "without occupying the target machine". A
//! [`TopologyProfile`] is that stored artifact: the machine identity, the
//! placement it was measured under, and the `O`/`L` matrices.

use crate::cost::CostMatrices;
use crate::machine::MachineSpec;
use crate::mapping::RankMapping;
use hbar_matrix::DenseMatrix;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A measured (or analytically derived) topology profile for `P` ranks.
///
/// Predictions made from a profile are only valid for executions that use
/// the same machine and rank placement (paper §III) — the consistency that
/// affinity control enforces on real systems. [`Self::placement_matches`]
/// makes that check explicit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyProfile {
    /// The machine the profile was collected on.
    pub machine: MachineSpec,
    /// The rank→core placement in effect during collection.
    pub mapping: RankMapping,
    /// Number of ranks profiled.
    pub p: usize,
    /// The `O` and `L` matrices (seconds).
    pub cost: CostMatrices,
}

impl TopologyProfile {
    /// Builds a noise-free profile directly from the machine's ground
    /// truth. This is what an ideal, infinitely repeated benchmark run
    /// would converge to; tests and examples use it when measurement noise
    /// is irrelevant. The full system uses
    /// `hbar_simnet::profiling::measure_profile`, which actually runs the
    /// paper's benchmark procedure on the simulator.
    pub fn from_ground_truth(machine: &MachineSpec, mapping: &RankMapping) -> Self {
        Self::from_ground_truth_for(machine, mapping, machine.total_cores())
    }

    /// Like [`Self::from_ground_truth`] but for the first `p` ranks only.
    pub fn from_ground_truth_for(machine: &MachineSpec, mapping: &RankMapping, p: usize) -> Self {
        let cores = mapping.place(machine, p);
        let gt = &machine.ground_truth;
        let o = DenseMatrix::from_fn(p, |i, j| {
            if i == j {
                gt.effective_oii()
            } else {
                gt.effective_o(machine.link_class(cores[i], cores[j]))
            }
        });
        let l = DenseMatrix::from_fn(p, |i, j| {
            if i == j {
                0.0
            } else {
                gt.effective_l(machine.link_class(cores[i], cores[j]))
            }
        });
        TopologyProfile {
            machine: machine.clone(),
            mapping: mapping.clone(),
            p,
            cost: CostMatrices { o, l },
        }
    }

    /// True if `machine`/`mapping`/`p` match the conditions this profile
    /// was collected under, i.e. predictions from it are valid.
    pub fn placement_matches(
        &self,
        machine: &MachineSpec,
        mapping: &RankMapping,
        p: usize,
    ) -> bool {
        self.p == p && &self.machine == machine && &self.mapping == mapping
    }

    /// Restriction to the first `p` ranks (placements are prefixes, so a
    /// smaller run under the same mapping reuses the same leading cores
    /// only when the mapping is prefix-stable — true for [`RankMapping::Block`]
    /// and [`RankMapping::Custom`], *not* for round-robin, whose node count
    /// depends on `p`).
    ///
    /// # Panics
    /// Panics if `p` exceeds the profile size.
    pub fn truncate(&self, p: usize) -> Self {
        assert!(
            p <= self.p,
            "cannot truncate {}-rank profile to {p}",
            self.p
        );
        let idx: Vec<usize> = (0..p).collect();
        TopologyProfile {
            machine: self.machine.clone(),
            mapping: self.mapping.clone(),
            p,
            cost: self.cost.submatrices(&idx),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the profile to `path` as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Reads a profile from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::LinkClass;

    #[test]
    fn ground_truth_profile_reflects_link_classes() {
        let m = MachineSpec::dual_quad_cluster(2);
        let prof = TopologyProfile::from_ground_truth(&m, &RankMapping::Block);
        assert_eq!(prof.p, 16);
        let gt = &m.ground_truth;
        // Ranks 0,1 share a socket; 0,4 cross sockets; 0,8 cross nodes.
        assert_eq!(prof.cost.o[(0, 1)], gt.effective_o(LinkClass::SameSocket));
        assert_eq!(prof.cost.o[(0, 4)], gt.effective_o(LinkClass::CrossSocket));
        assert_eq!(prof.cost.o[(0, 8)], gt.effective_o(LinkClass::InterNode));
        assert_eq!(prof.cost.o[(3, 3)], gt.effective_oii());
        assert_eq!(prof.cost.l[(2, 2)], 0.0);
    }

    #[test]
    fn ground_truth_profile_is_symmetric() {
        let m = MachineSpec::dual_hex_cluster(3);
        let prof = TopologyProfile::from_ground_truth(&m, &RankMapping::RoundRobin);
        assert!(prof.cost.o.is_symmetric());
        assert!(prof.cost.l.is_symmetric());
    }

    #[test]
    fn json_roundtrip() {
        let m = MachineSpec::new(2, 2, 2);
        let prof = TopologyProfile::from_ground_truth(&m, &RankMapping::RoundRobin);
        let back = TopologyProfile::from_json(&prof.to_json()).unwrap();
        assert_eq!(back, prof);
    }

    #[test]
    fn save_load_roundtrip() {
        let m = MachineSpec::new(1, 2, 2);
        let prof = TopologyProfile::from_ground_truth(&m, &RankMapping::Block);
        let dir = std::env::temp_dir().join("hbar_topo_profile_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        prof.save(&path).unwrap();
        let back = TopologyProfile::load(&path).unwrap();
        assert_eq!(back, prof);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn placement_match_detects_mismatch() {
        let m = MachineSpec::new(2, 1, 2);
        let prof = TopologyProfile::from_ground_truth(&m, &RankMapping::Block);
        assert!(prof.placement_matches(&m, &RankMapping::Block, 4));
        assert!(!prof.placement_matches(&m, &RankMapping::RoundRobin, 4));
        assert!(!prof.placement_matches(&m, &RankMapping::Block, 3));
        let other = MachineSpec::new(2, 1, 3);
        assert!(!prof.placement_matches(&other, &RankMapping::Block, 4));
    }

    #[test]
    fn truncate_restricts_matrices() {
        let m = MachineSpec::new(2, 1, 2);
        let prof = TopologyProfile::from_ground_truth(&m, &RankMapping::Block);
        let small = prof.truncate(2);
        assert_eq!(small.p, 2);
        assert_eq!(small.cost.o[(0, 1)], prof.cost.o[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncate_beyond_size_panics() {
        let m = MachineSpec::new(1, 1, 2);
        TopologyProfile::from_ground_truth(&m, &RankMapping::Block).truncate(5);
    }
}
