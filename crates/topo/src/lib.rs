//! Topological cost model of a heterogeneous cluster.
//!
//! Section IV of Meyer & Elster (IPDPS 2011) reduces the cost of signalling
//! between processes to three empirically measurable parameters, collected in
//! two `P × P` matrices:
//!
//! * `O_ij` (`i ≠ j`) — the cost of sending one message from process `i` to
//!   process `j` (Hockney intercept of a ping-pong regression);
//! * `O_ii` — the software overhead of initiating a communication call that
//!   causes no transmission;
//! * `L_ij` — the marginal cost of adding one more message to a non-empty
//!   set of messages sent simultaneously from `i`.
//!
//! From these, the cost of a send set from `i` to recipients `J` is
//!
//! ```text
//! Eq. 1:  t(i, J) = max_k O_{i,J_k} + Σ_k L_{i,J_k}     (general case)
//! Eq. 2:  t(i, J) = O_ii           + Σ_k L_{i,J_k}     (receivers already waiting)
//! ```
//!
//! This crate provides the machine descriptions the simulator executes
//! against ([`machine`]), the rank→core placements that stand in for
//! `sched_setaffinity` ([`mapping`]), the cost matrices and Eq. 1/Eq. 2
//! ([`cost`]), the regression statistics used to extract parameters from
//! benchmark samples ([`regress`]), on-disk profiles ([`profile`]), the
//! symmetrized metric view needed by SSS clustering ([`metric`]), heat-map
//! rendering for Fig. 9 ([`heatmap`]), the component-submatrix
//! replication shortcut discussed in §IV-B ([`replicate`]), and its
//! generalization to feature-vector pair classes ([`features`]) that the
//! decomposed profiling sweep clusters on. For machines past P ≈ 4096,
//! [`compressed`] stores the same model as a `u16` class grid plus
//! per-class value tables (2 bytes per pair instead of 16), and
//! [`cost::CostProvider`] abstracts over both storages so the tuner
//! never needs the dense matrices.

pub mod compressed;
pub mod cost;
pub mod features;
pub mod heatmap;
pub mod library;
pub mod machine;
pub mod mapping;
pub mod metric;
pub mod profile;
pub mod regress;
pub mod replicate;

pub use compressed::{CompressError, CompressedCostModel, MAX_CLASSES};
pub use cost::{
    cost_fingerprint, CostMatrices, CostProvider, FingerprintStream, SendMode,
    COST_FINGERPRINT_VERSION,
};
pub use features::{
    ExactExtractor, PairFeatureExtractor, PairFeatures, RankFeatures, TopologyExtractor,
};
pub use machine::{CoreId, GroundTruth, LinkClass, MachineSpec};
pub use mapping::RankMapping;
pub use metric::DistanceMetric;
pub use profile::TopologyProfile;
