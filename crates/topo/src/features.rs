//! Feature-vector descriptions of process pairs (§IV-B generalized).
//!
//! The paper's profiling-cost shortcut replicates one measurement per
//! [`LinkClass`]. That is the right idea but the wrong granularity for
//! machines beyond the two paper clusters: a fat-tree has several
//! inter-node distances, a NUMA node has asymmetric socket pairs, and a
//! partially noisy machine mixes measurement regimes. This module
//! generalizes the classing to an explicit **feature vector** per pair —
//! two pairs are interchangeable (measure one, reuse for both) exactly
//! when their feature vectors are equal.
//!
//! The extraction is pluggable ([`PairFeatureExtractor`]): the default
//! [`TopologyExtractor`] derives features from the machine description
//! (interconnect class, hop signature, socket relation), while
//! [`ExactExtractor`] makes every pair its own class, which degrades the
//! clustered profiling sweep to the exhaustive one — the bit-parity
//! regime the regression harness gates on.
//!
//! Features deliberately contain no floating-point fields so they can be
//! used as exact hash keys.

use crate::machine::{LinkClass, MachineSpec};
use serde::{Deserialize, Serialize};

/// Hop-signature bit: the message crosses a socket boundary.
pub const HOP_SOCKET: u8 = 1 << 0;
/// Hop-signature bit: the message crosses the inter-node network.
pub const HOP_NODE: u8 = 1 << 1;

/// Marker for "no socket relation" (the endpoints are on different nodes,
/// so their socket indices are not comparable NUMA-wise).
pub const SOCKET_RELATION_REMOTE: u16 = u16::MAX;

/// The equivalence-class key of one ordered pair of cores.
///
/// Two pairs with equal features are assumed to have statistically
/// exchangeable `(O, L)` measurements; the clustered sweep measures one
/// representative per distinct value and validates the assumption with
/// per-class probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairFeatures {
    /// Coarsest interconnect layer the pair communicates through.
    pub link: LinkClass,
    /// Bitmask of interconnect layers crossed ([`HOP_SOCKET`],
    /// [`HOP_NODE`]); finer than `link` on machines with deeper
    /// hierarchies, redundant (but harmless) on the paper clusters.
    pub hop_signature: u8,
    /// NUMA/socket relation: the unordered `(min, max)` socket indices for
    /// an intra-node pair, `(SOCKET_RELATION_REMOTE, _)` otherwise. On
    /// asymmetric NUMA boards, socket pair (0,1) and (0,2) may have
    /// different interconnect distances even though both are `CrossSocket`.
    pub socket_relation: (u16, u16),
    /// Quantized measurement-noise regime the pair is profiled under
    /// (0 = deterministic). Supplied by the profiling layer, not the
    /// topology: pairs measured under different noise regimes must not
    /// share a representative.
    pub noise_regime: u16,
    /// Extractor-specific refinement. The topology extractor leaves it 0;
    /// [`ExactExtractor`] packs the rank pair here so every pair is a
    /// singleton class.
    pub refinement: u64,
}

/// The equivalence-class key of one rank's diagonal (`O_ii`) measurement:
/// a transmission-free call costs the same on every core of a homogeneous
/// machine, so all diagonals usually collapse into one class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RankFeatures {
    /// Socket index of the rank's core (future-proofing for machines with
    /// heterogeneous sockets; constant on the paper clusters).
    pub socket: u16,
    /// Noise regime, as in [`PairFeatures::noise_regime`].
    pub noise_regime: u16,
    /// Extractor-specific refinement (the rank index under
    /// [`ExactExtractor`]).
    pub refinement: u64,
}

/// Pluggable feature extraction over a machine's core pairs.
///
/// Implementations must be deterministic pure functions of
/// `(machine, cores)`: the clustered sweep calls them twice (classing and
/// scatter) and relies on both passes agreeing.
pub trait PairFeatureExtractor: Sync {
    /// Features of the ordered pair `(rank_i on core_a, rank_j on core_b)`.
    /// `ranks` are provided for extractors that refine by rank identity.
    fn pair_features(
        &self,
        machine: &MachineSpec,
        ranks: (usize, usize),
        cores: (usize, usize),
    ) -> PairFeatures;

    /// Features of one rank's diagonal measurement.
    fn rank_features(&self, machine: &MachineSpec, rank: usize, core: usize) -> RankFeatures;

    /// Quantized noise regime stamped into every produced feature vector.
    fn noise_regime(&self) -> u16;
}

/// The default extractor: classes pairs by interconnect topology alone
/// (link class, hop signature, socket relation), so a homogeneous machine
/// collapses `|P|²` pairs into a handful of classes.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopologyExtractor {
    /// Noise regime stamped into every feature vector (see
    /// [`PairFeatures::noise_regime`]).
    pub noise_regime: u16,
}

impl TopologyExtractor {
    /// Extractor for measurements under the given quantized noise regime.
    pub fn with_noise_regime(noise_regime: u16) -> Self {
        TopologyExtractor { noise_regime }
    }
}

impl PairFeatureExtractor for TopologyExtractor {
    fn pair_features(
        &self,
        machine: &MachineSpec,
        _ranks: (usize, usize),
        (core_a, core_b): (usize, usize),
    ) -> PairFeatures {
        let a = machine.core(core_a);
        let b = machine.core(core_b);
        let link = a.link_class(&b);
        let mut hops = 0u8;
        if a.node != b.node {
            hops |= HOP_NODE | HOP_SOCKET;
        } else if a.socket != b.socket {
            hops |= HOP_SOCKET;
        }
        let socket_relation = if a.node == b.node {
            let (lo, hi) = if a.socket <= b.socket {
                (a.socket, b.socket)
            } else {
                (b.socket, a.socket)
            };
            (lo as u16, hi as u16)
        } else {
            (SOCKET_RELATION_REMOTE, SOCKET_RELATION_REMOTE)
        };
        PairFeatures {
            link,
            hop_signature: hops,
            socket_relation,
            noise_regime: self.noise_regime,
            refinement: 0,
        }
    }

    fn rank_features(&self, machine: &MachineSpec, _rank: usize, core: usize) -> RankFeatures {
        RankFeatures {
            socket: machine.core(core).socket as u16,
            noise_regime: self.noise_regime,
            refinement: 0,
        }
    }

    fn noise_regime(&self) -> u16 {
        self.noise_regime
    }
}

/// The degenerate extractor: every pair (and every diagonal) is its own
/// class, so the clustered sweep performs exactly the exhaustive sweep's
/// measurements. This is the regime where clustered and exhaustive
/// profiles must agree bit-for-bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactExtractor {
    /// Noise regime stamped into every feature vector.
    pub noise_regime: u16,
}

impl PairFeatureExtractor for ExactExtractor {
    fn pair_features(
        &self,
        machine: &MachineSpec,
        (i, j): (usize, usize),
        cores: (usize, usize),
    ) -> PairFeatures {
        let mut f = TopologyExtractor::with_noise_regime(self.noise_regime).pair_features(
            machine,
            (i, j),
            cores,
        );
        f.refinement = ((i as u64) << 32) | j as u64;
        f
    }

    fn rank_features(&self, machine: &MachineSpec, rank: usize, core: usize) -> RankFeatures {
        let mut f = TopologyExtractor::with_noise_regime(self.noise_regime)
            .rank_features(machine, rank, core);
        f.refinement = rank as u64;
        f
    }

    fn noise_regime(&self) -> u16 {
        self.noise_regime
    }
}

impl MachineSpec {
    /// Topology-derived features of the core pair `(a, b)` under the
    /// default extractor (noise regime 0). Convenience for callers that
    /// want the classing key without constructing an extractor.
    pub fn pair_features(&self, a: usize, b: usize) -> PairFeatures {
        TopologyExtractor::default().pair_features(self, (0, 1), (a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_features_track_link_classes() {
        let m = MachineSpec::dual_quad_cluster(2);
        let same = m.pair_features(0, 1);
        assert_eq!(same.link, LinkClass::SameSocket);
        assert_eq!(same.hop_signature, 0);
        assert_eq!(same.socket_relation, (0, 0));

        let cross = m.pair_features(0, 4);
        assert_eq!(cross.link, LinkClass::CrossSocket);
        assert_eq!(cross.hop_signature, HOP_SOCKET);
        assert_eq!(cross.socket_relation, (0, 1));

        let inter = m.pair_features(0, 8);
        assert_eq!(inter.link, LinkClass::InterNode);
        assert_eq!(inter.hop_signature, HOP_SOCKET | HOP_NODE);
        assert_eq!(
            inter.socket_relation,
            (SOCKET_RELATION_REMOTE, SOCKET_RELATION_REMOTE)
        );
    }

    #[test]
    fn topology_features_are_direction_invariant() {
        let m = MachineSpec::dual_hex_cluster(3);
        for (a, b) in [(0usize, 7usize), (2, 13), (5, 30)] {
            assert_eq!(m.pair_features(a, b), m.pair_features(b, a));
        }
    }

    #[test]
    fn homogeneous_machine_collapses_to_four_pair_classes() {
        // Same-socket pairs keep their socket identity (asymmetric-NUMA
        // future-proofing), so a dual-socket machine has two same-socket
        // classes plus cross-socket plus inter-node.
        let m = MachineSpec::dual_quad_cluster(4);
        let mut distinct = std::collections::HashSet::new();
        let total = m.total_cores();
        for a in 0..total {
            for b in 0..total {
                if a != b {
                    distinct.insert(m.pair_features(a, b));
                }
            }
        }
        assert_eq!(distinct.len(), 4, "{distinct:?}");
    }

    #[test]
    fn exact_extractor_separates_every_pair() {
        let m = MachineSpec::new(1, 1, 4);
        let ex = ExactExtractor::default();
        let f01 = ex.pair_features(&m, (0, 1), (0, 1));
        let f02 = ex.pair_features(&m, (0, 2), (0, 2));
        let f10 = ex.pair_features(&m, (1, 0), (1, 0));
        assert_ne!(f01, f02);
        assert_ne!(f01, f10, "ordered pairs stay distinct");
    }

    #[test]
    fn noise_regime_separates_classes() {
        let m = MachineSpec::new(1, 1, 2);
        let quiet = TopologyExtractor::with_noise_regime(0);
        let noisy = TopologyExtractor::with_noise_regime(3);
        assert_ne!(
            quiet.pair_features(&m, (0, 1), (0, 1)),
            noisy.pair_features(&m, (0, 1), (0, 1))
        );
    }

    #[test]
    fn rank_features_record_socket() {
        let m = MachineSpec::dual_quad_cluster(1);
        let ex = TopologyExtractor::default();
        assert_eq!(ex.rank_features(&m, 0, 0).socket, 0);
        assert_eq!(ex.rank_features(&m, 4, 4).socket, 1);
        assert_eq!(ex.rank_features(&m, 0, 0), ex.rank_features(&m, 9, 1));
    }

    #[test]
    fn features_serde_roundtrip() {
        let m = MachineSpec::dual_quad_cluster(2);
        let f = m.pair_features(0, 9);
        let json = serde_json::to_string(&f).unwrap();
        let back: PairFeatures = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
