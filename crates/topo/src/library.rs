//! A directory-backed library of topology profiles.
//!
//! §VIII of the paper identifies the missing piece for using tuned
//! barriers from unmodified applications: "Implementing a solution which
//! stores the profile in a manner which can be efficiently indexed at
//! run-time would alleviate this problem." A [`ProfileLibrary`] is that
//! store: profiles keyed by (machine name, placement policy, rank
//! count), one JSON file each, with an in-memory index built once at
//! open time so run-time lookups are hash-map hits.

use crate::machine::MachineSpec;
use crate::mapping::RankMapping;
use crate::profile::TopologyProfile;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lookup key of a stored profile.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    pub machine_name: String,
    pub mapping_tag: String,
    pub p: usize,
}

impl ProfileKey {
    /// The key under which a profile would be stored.
    pub fn of(profile: &TopologyProfile) -> Self {
        ProfileKey {
            machine_name: profile.machine.name.clone(),
            mapping_tag: mapping_tag(&profile.mapping),
            p: profile.p,
        }
    }

    fn file_name(&self) -> String {
        // Machine names are generated identifiers; sanitize defensively.
        let safe: String = self
            .machine_name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}__{}__{}.profile.json", self.mapping_tag, self.p)
    }
}

/// A short, stable tag per placement policy.
fn mapping_tag(mapping: &RankMapping) -> String {
    match mapping {
        RankMapping::RoundRobin => "rr".into(),
        RankMapping::Block => "block".into(),
        RankMapping::Custom(cores) => {
            // Content-derived tag so distinct custom placements don't
            // collide.
            let mut h: u64 = 0xcbf29ce484222325;
            for &c in cores {
                h ^= c as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            format!("custom{h:016x}")
        }
    }
}

/// A directory of stored profiles with an in-memory index.
pub struct ProfileLibrary {
    dir: PathBuf,
    index: HashMap<ProfileKey, PathBuf>,
}

impl ProfileLibrary {
    /// Opens (creating if needed) a library at `dir` and indexes its
    /// contents. Files that fail to parse are skipped.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut index = HashMap::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            if let Ok(profile) = TopologyProfile::load(&path) {
                index.insert(ProfileKey::of(&profile), path);
            }
        }
        Ok(ProfileLibrary {
            dir: dir.to_path_buf(),
            index,
        })
    }

    /// Number of indexed profiles.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the library holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Stores a profile (overwriting any existing entry with the same
    /// key) and indexes it.
    pub fn store(&mut self, profile: &TopologyProfile) -> io::Result<()> {
        let key = ProfileKey::of(profile);
        let path = self.dir.join(key.file_name());
        profile.save(&path)?;
        self.index.insert(key, path);
        Ok(())
    }

    /// Looks up the profile for an exact (machine, mapping, p) triple.
    pub fn lookup(
        &self,
        machine: &MachineSpec,
        mapping: &RankMapping,
        p: usize,
    ) -> io::Result<Option<TopologyProfile>> {
        let key = ProfileKey {
            machine_name: machine.name.clone(),
            mapping_tag: mapping_tag(mapping),
            p,
        };
        match self.index.get(&key) {
            None => Ok(None),
            Some(path) => TopologyProfile::load(path).map(Some),
        }
    }

    /// All indexed keys (unordered).
    pub fn keys(&self) -> impl Iterator<Item = &ProfileKey> {
        self.index.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hbar_profile_lib_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_and_lookup_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut lib = ProfileLibrary::open(&dir).unwrap();
        assert!(lib.is_empty());
        let machine = MachineSpec::dual_quad_cluster(2);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        lib.store(&prof).unwrap();
        assert_eq!(lib.len(), 1);
        let hit = lib.lookup(&machine, &RankMapping::RoundRobin, 16).unwrap();
        assert_eq!(hit, Some(prof));
        // Different mapping or size misses.
        assert!(lib
            .lookup(&machine, &RankMapping::Block, 16)
            .unwrap()
            .is_none());
        assert!(lib
            .lookup(&machine, &RankMapping::RoundRobin, 8)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_rebuilds_index() {
        let dir = tmpdir("reopen");
        let machine = MachineSpec::dual_hex_cluster(1);
        {
            let mut lib = ProfileLibrary::open(&dir).unwrap();
            for p in [4usize, 8, 12] {
                let prof = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::Block, p);
                lib.store(&prof).unwrap();
            }
        }
        let lib = ProfileLibrary::open(&dir).unwrap();
        assert_eq!(lib.len(), 3);
        let hit = lib.lookup(&machine, &RankMapping::Block, 8).unwrap();
        assert!(hit.is_some());
        assert_eq!(hit.unwrap().p, 8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn custom_mappings_do_not_collide() {
        let dir = tmpdir("custom");
        let mut lib = ProfileLibrary::open(&dir).unwrap();
        let machine = MachineSpec::new(1, 1, 4);
        let m1 = RankMapping::Custom(vec![0, 1]);
        let m2 = RankMapping::Custom(vec![2, 3]);
        let p1 = TopologyProfile::from_ground_truth_for(&machine, &m1, 2);
        let p2 = TopologyProfile::from_ground_truth_for(&machine, &m2, 2);
        lib.store(&p1).unwrap();
        lib.store(&p2).unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.lookup(&machine, &m1, 2).unwrap(), Some(p1));
        assert_eq!(lib.lookup(&machine, &m2, 2).unwrap(), Some(p2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_overwrites_same_key() {
        let dir = tmpdir("overwrite");
        let mut lib = ProfileLibrary::open(&dir).unwrap();
        let machine = MachineSpec::new(1, 1, 2);
        let mut prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        lib.store(&prof).unwrap();
        prof.cost.o[(0, 1)] *= 2.0;
        lib.store(&prof).unwrap();
        assert_eq!(lib.len(), 1);
        let hit = lib
            .lookup(&machine, &RankMapping::Block, 2)
            .unwrap()
            .unwrap();
        assert_eq!(hit.cost.o[(0, 1)], prof.cost.o[(0, 1)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unparseable_files_are_skipped() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("junk.profile.json"), "not json").unwrap();
        let lib = ProfileLibrary::open(&dir).unwrap();
        assert!(lib.is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
