//! Profiling-cost reduction by component-submatrix replication (§IV-B).
//!
//! The paper notes that the `|P|²` pairwise tests "can absorb a significant
//! amount of run time for large |P|", and that "a great deal of duplicate
//! effort could be rationalized by constructing P × P matrices from
//! replicating component submatrices, which capture local effects at each
//! level of the interconnect" — their results "did show similar submatrices
//! corresponding to similar subsystems".
//!
//! [`replicate_by_class`] implements that shortcut: measure one
//! representative pair per link class (plus one diagonal entry), then fill
//! the whole matrix from the placement's link classes.
//! [`replication_error`] quantifies the information lost against a fully
//! measured matrix, which is how we verify the paper's "without significant
//! loss of information" claim in the test suite.

use crate::cost::CostMatrices;
use crate::machine::{LinkClass, MachineSpec};
use hbar_matrix::DenseMatrix;

/// Per-link-class representative values measured from a handful of pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassRepresentatives {
    pub o_same_socket: f64,
    pub o_cross_socket: f64,
    pub o_inter_node: f64,
    pub l_same_socket: f64,
    pub l_cross_socket: f64,
    pub l_inter_node: f64,
    pub o_diag: f64,
}

impl ClassRepresentatives {
    fn o(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::SameSocket => self.o_same_socket,
            LinkClass::CrossSocket => self.o_cross_socket,
            LinkClass::InterNode => self.o_inter_node,
        }
    }

    fn l(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::SameSocket => self.l_same_socket,
            LinkClass::CrossSocket => self.l_cross_socket,
            LinkClass::InterNode => self.l_inter_node,
        }
    }
}

/// Extracts class representatives from a measured profile by averaging the
/// entries of each link class present under `cores` (flat core indices of
/// each rank). Classes with no pair present fall back to 0.
pub fn representatives_from(
    cost: &CostMatrices,
    machine: &MachineSpec,
    cores: &[usize],
) -> ClassRepresentatives {
    let p = cost.p();
    assert_eq!(
        cores.len(),
        p,
        "placement covers {} ranks, profile has {p}",
        cores.len()
    );
    let class_mean = |matrix: &DenseMatrix<f64>, class: LinkClass| -> f64 {
        matrix
            .mean_where(|i, j| i != j && machine.link_class(cores[i], cores[j]) == class)
            .unwrap_or(0.0)
    };
    let o_diag = cost.o.mean_where(|i, j| i == j).unwrap_or(0.0);
    ClassRepresentatives {
        o_same_socket: class_mean(&cost.o, LinkClass::SameSocket),
        o_cross_socket: class_mean(&cost.o, LinkClass::CrossSocket),
        o_inter_node: class_mean(&cost.o, LinkClass::InterNode),
        l_same_socket: class_mean(&cost.l, LinkClass::SameSocket),
        l_cross_socket: class_mean(&cost.l, LinkClass::CrossSocket),
        l_inter_node: class_mean(&cost.l, LinkClass::InterNode),
        o_diag,
    }
}

/// Builds full `P × P` matrices by replicating class representatives over
/// the placement `cores`.
pub fn replicate_by_class(
    reps: &ClassRepresentatives,
    machine: &MachineSpec,
    cores: &[usize],
) -> CostMatrices {
    let p = cores.len();
    let o = DenseMatrix::from_fn(p, |i, j| {
        if i == j {
            reps.o_diag
        } else {
            reps.o(machine.link_class(cores[i], cores[j]))
        }
    });
    let l = DenseMatrix::from_fn(p, |i, j| {
        if i == j {
            0.0
        } else {
            reps.l(machine.link_class(cores[i], cores[j]))
        }
    });
    CostMatrices { o, l }
}

/// Maximum relative deviation between a replicated matrix pair and a fully
/// measured one, over off-diagonal `O` entries and all `L` entries.
pub fn replication_error(full: &CostMatrices, replicated: &CostMatrices) -> f64 {
    assert_eq!(full.p(), replicated.p(), "profile sizes differ");
    let mut worst = 0.0f64;
    for i in 0..full.p() {
        for j in 0..full.p() {
            if i != j {
                let (a, b) = (full.o[(i, j)], replicated.o[(i, j)]);
                worst = worst.max((a - b).abs() / a.abs().max(1e-300));
                let (a, b) = (full.l[(i, j)], replicated.l[(i, j)]);
                worst = worst.max((a - b).abs() / a.abs().max(1e-300));
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RankMapping;
    use crate::profile::TopologyProfile;

    #[test]
    fn replication_of_ground_truth_is_exact() {
        // A noise-free profile is class-constant, so replication loses nothing.
        let machine = MachineSpec::dual_quad_cluster(2);
        let mapping = RankMapping::RoundRobin;
        let prof = TopologyProfile::from_ground_truth(&machine, &mapping);
        let cores = mapping.place(&machine, prof.p);
        let reps = representatives_from(&prof.cost, &machine, &cores);
        let rep = replicate_by_class(&reps, &machine, &cores);
        assert!(replication_error(&prof.cost, &rep) < 1e-12);
    }

    #[test]
    fn replication_error_measures_deviation() {
        let machine = MachineSpec::new(1, 1, 2);
        let mapping = RankMapping::Block;
        let mut prof = TopologyProfile::from_ground_truth(&machine, &mapping);
        let cores = mapping.place(&machine, prof.p);
        let reps = representatives_from(&prof.cost, &machine, &cores);
        // Perturb one entry by 10%.
        prof.cost.o[(0, 1)] *= 1.1;
        let rep = replicate_by_class(&reps, &machine, &cores);
        let err = replication_error(&prof.cost, &rep);
        assert!(err > 0.05 && err < 0.15, "{err}");
    }

    #[test]
    fn representatives_average_within_class() {
        let machine = MachineSpec::new(1, 2, 1); // 2 cores, cross-socket pair
        let mut cost = CostMatrices::zeros(2);
        cost.o[(0, 1)] = 2.0;
        cost.o[(1, 0)] = 4.0;
        cost.o[(0, 0)] = 0.5;
        cost.o[(1, 1)] = 1.5;
        let reps = representatives_from(&cost, &machine, &[0, 1]);
        assert_eq!(reps.o_cross_socket, 3.0);
        assert_eq!(reps.o_diag, 1.0);
        assert_eq!(reps.o_same_socket, 0.0, "class absent falls back to 0");
    }

    #[test]
    fn replicated_matrices_have_zero_l_diagonal() {
        let machine = MachineSpec::new(2, 1, 2);
        let mapping = RankMapping::Block;
        let prof = TopologyProfile::from_ground_truth(&machine, &mapping);
        let cores = mapping.place(&machine, prof.p);
        let reps = representatives_from(&prof.cost, &machine, &cores);
        let rep = replicate_by_class(&reps, &machine, &cores);
        for i in 0..rep.p() {
            assert_eq!(rep.l[(i, i)], 0.0);
        }
    }
}
