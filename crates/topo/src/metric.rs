//! Symmetrized metric view of a topology profile.
//!
//! SSS clustering (paper §VII-A) "only requires that clustered points
//! reside in a metric space, i.e. non-zero distances separate non-identical
//! pairs symmetrically, and the triangle inequality holds. The use of this
//! method is our reason for requiring symmetry of the topological profile."
//!
//! [`DistanceMetric`] wraps a profile's `O` matrix as that metric: distance
//! between distinct ranks `i, j` is the symmetrized single-message cost
//! `(O_ij + O_ji) / 2`, and `d(i, i) = 0`.

use crate::cost::CostMatrices;
use hbar_matrix::DenseMatrix;
use std::sync::Arc;

/// A finite metric space over ranks `0..p`, derived from measured costs.
///
/// Two backings exist: a dense `p × p` distance matrix, and a
/// class-compressed form sharing a `u16` class grid (normally the
/// [`crate::compressed::CompressedCostModel`]'s own grid, zero extra
/// memory) with one distance per class. Row access for clustering scans
/// goes through [`row_into`](Self::row_into), which decompresses a
/// classed row into caller-owned scratch and borrows a dense row
/// directly, so neither backing allocates per query.
#[derive(Clone, Debug)]
pub struct DistanceMetric {
    backing: Backing,
}

#[derive(Clone, Debug)]
enum Backing {
    Dense(DenseMatrix<f64>),
    Classed {
        p: usize,
        grid: Arc<Vec<u16>>,
        table: Vec<f64>,
    },
}

/// A violation found by [`DistanceMetric::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricViolation {
    /// `d(i, j) ≤ 0` for distinct `i, j`.
    NonPositive { i: usize, j: usize, d: f64 },
    /// `d(i, k) > d(i, j) + d(j, k)` beyond tolerance.
    TriangleInequality {
        i: usize,
        j: usize,
        k: usize,
        direct: f64,
        via: f64,
    },
}

impl DistanceMetric {
    /// Builds the metric from cost matrices, symmetrizing `O` off-diagonals.
    ///
    /// Processed in square tiles so both the `O_ij` read and the
    /// transposed `O_ji` read stay cache-resident; the naive row-major
    /// `from_fn` pairs every row element with a full-column stride and
    /// was the single largest cost of tuning at P ≥ 1024. Each distance
    /// is written to `(i, j)` and `(j, i)` at once — IEEE addition is
    /// commutative, so the result is bit-identical to evaluating the
    /// two symmetric entries independently.
    pub fn from_costs(cost: &CostMatrices) -> Self {
        const TILE: usize = 64;
        let p = cost.p();
        let o = cost.o.as_slice();
        let mut data = vec![0.0f64; p * p];
        for bi in (0..p).step_by(TILE) {
            for bj in (bi..p).step_by(TILE) {
                let ei = (bi + TILE).min(p);
                let ej = (bj + TILE).min(p);
                for i in bi..ei {
                    for j in bj.max(i + 1)..ej {
                        let v = (o[i * p + j] + o[j * p + i]) / 2.0;
                        data[i * p + j] = v;
                        data[j * p + i] = v;
                    }
                }
            }
        }
        DistanceMetric {
            backing: Backing::Dense(DenseMatrix::from_vec(p, data)),
        }
    }

    /// Builds directly from a symmetric distance matrix (diagonal forced
    /// to zero).
    pub fn from_matrix(mut d: DenseMatrix<f64>) -> Self {
        d.symmetrize();
        for i in 0..d.n() {
            d[(i, i)] = 0.0;
        }
        DistanceMetric {
            backing: Backing::Dense(d),
        }
    }

    /// Builds a class-compressed metric: `d(i, j) = table[grid[i·p + j]]`.
    ///
    /// The grid is shared (typically with the compressed cost model that
    /// derived this metric), so the metric itself costs only the
    /// per-class table. Every diagonal cell's class must map to `0.0`
    /// and the grid must be symmetric — the compressed model guarantees
    /// both by construction.
    ///
    /// # Panics
    /// Panics if `grid.len() != p * p` or a class id is outside `table`.
    pub fn from_classes(p: usize, grid: Arc<Vec<u16>>, table: Vec<f64>) -> Self {
        assert_eq!(grid.len(), p * p, "class grid must be p × p");
        debug_assert!(
            grid.iter().all(|&c| (c as usize) < table.len()),
            "class id out of table range"
        );
        debug_assert!(
            (0..p).all(|i| table[grid[i * p + i] as usize] == 0.0),
            "diagonal classes must map to zero distance"
        );
        DistanceMetric {
            backing: Backing::Classed { p, grid, table },
        }
    }

    /// Number of points.
    pub fn p(&self) -> usize {
        match &self.backing {
            Backing::Dense(d) => d.n(),
            Backing::Classed { p, .. } => *p,
        }
    }

    /// Distance between two ranks.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        match &self.backing {
            Backing::Dense(d) => d[(i, j)],
            Backing::Classed { p, grid, table } => {
                assert!(i < *p && j < *p, "index ({i},{j}) out of range {p}");
                table[grid[i * p + j] as usize]
            }
        }
    }

    /// All distances from rank `i`, as one contiguous row — the cache-
    /// friendly access pattern for clustering scans over a fixed center.
    ///
    /// # Panics
    /// Panics on a class-compressed metric, which has no dense rows to
    /// borrow; use [`row_into`](Self::row_into) there.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        match &self.backing {
            Backing::Dense(d) => d.row(i),
            Backing::Classed { .. } => {
                panic!("class-compressed metric has no dense rows; use row_into")
            }
        }
    }

    /// All distances from rank `i`: a direct borrow for a dense metric,
    /// or a decompression of the class row into `scratch` (resized as
    /// needed, reused across calls — no steady-state allocation).
    #[inline]
    pub fn row_into<'a>(&'a self, i: usize, scratch: &'a mut Vec<f64>) -> &'a [f64] {
        match &self.backing {
            Backing::Dense(d) => d.row(i),
            Backing::Classed { p, grid, table } => {
                scratch.resize(*p, 0.0);
                let classes = &grid[i * p..(i + 1) * p];
                for (dst, &c) in scratch.iter_mut().zip(classes) {
                    *dst = table[c as usize];
                }
                &scratch[..]
            }
        }
    }

    /// The diameter: maximum pairwise distance (0 for fewer than 2 points).
    pub fn diameter(&self) -> f64 {
        match &self.backing {
            Backing::Dense(d) => d.max_off_diagonal().unwrap_or(0.0),
            Backing::Classed { p, grid, table } => {
                let mut acc: Option<f64> = None;
                for i in 0..*p {
                    for (j, &c) in grid[i * p..(i + 1) * p].iter().enumerate() {
                        let v = table[c as usize];
                        if i != j && v.is_finite() {
                            acc = Some(acc.map_or(v, |a| a.max(v)));
                        }
                    }
                }
                acc.unwrap_or(0.0)
            }
        }
    }

    /// Diameter restricted to a subset of ranks. Scans class rows
    /// through the table directly, so no decompression buffer is needed.
    pub fn diameter_of(&self, members: &[usize]) -> f64 {
        let mut max = 0.0f64;
        match &self.backing {
            Backing::Dense(d) => {
                for (a, &i) in members.iter().enumerate() {
                    let row = d.row(i);
                    for &j in &members[a + 1..] {
                        max = max.max(row[j]);
                    }
                }
            }
            Backing::Classed { p, grid, table } => {
                for (a, &i) in members.iter().enumerate() {
                    let row = &grid[i * p..(i + 1) * p];
                    for &j in &members[a + 1..] {
                        max = max.max(table[row[j] as usize]);
                    }
                }
            }
        }
        max
    }

    /// Adopts an already-symmetrized, zero-diagonal distance matrix
    /// verbatim (no re-symmetrization pass) — the asymmetric-model
    /// fallback of the compressed backend, which computes entries with
    /// the exact `from_costs` arithmetic itself.
    pub(crate) fn from_dense_unchecked(d: DenseMatrix<f64>) -> Self {
        DistanceMetric {
            backing: Backing::Dense(d),
        }
    }

    /// Checks metric-space axioms up to a relative tolerance, returning
    /// every violation found. Measured profiles carry sampling noise, so a
    /// small tolerance (e.g. 0.05) is appropriate.
    pub fn validate(&self, rel_tolerance: f64) -> Vec<MetricViolation> {
        let p = self.p();
        let mut violations = Vec::new();
        for i in 0..p {
            for j in (i + 1)..p {
                if self.dist(i, j) <= 0.0 {
                    violations.push(MetricViolation::NonPositive {
                        i,
                        j,
                        d: self.dist(i, j),
                    });
                }
            }
        }
        for i in 0..p {
            for j in 0..p {
                if j == i {
                    continue;
                }
                for k in 0..p {
                    if k == i || k == j {
                        continue;
                    }
                    let direct = self.dist(i, k);
                    let via = self.dist(i, j) + self.dist(j, k);
                    if direct > via * (1.0 + rel_tolerance) {
                        violations.push(MetricViolation::TriangleInequality {
                            i,
                            j,
                            k,
                            direct,
                            via,
                        });
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;
    use crate::mapping::RankMapping;
    use crate::profile::TopologyProfile;

    fn metric_for(machine: &MachineSpec) -> DistanceMetric {
        let prof = TopologyProfile::from_ground_truth(machine, &RankMapping::Block);
        DistanceMetric::from_costs(&prof.cost)
    }

    #[test]
    fn ground_truth_metric_is_valid() {
        let m = metric_for(&MachineSpec::dual_quad_cluster(3));
        assert!(m.validate(1e-9).is_empty());
    }

    #[test]
    fn diameter_is_internode_cost() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let gt = machine.ground_truth.clone();
        let m = metric_for(&machine);
        assert_eq!(
            m.diameter(),
            gt.effective_o(crate::machine::LinkClass::InterNode)
        );
    }

    #[test]
    fn diameter_of_subset() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let gt = machine.ground_truth.clone();
        let m = metric_for(&machine);
        // Ranks 0..8 are one node under block mapping: diameter = cross-socket.
        let node0: Vec<usize> = (0..8).collect();
        assert_eq!(
            m.diameter_of(&node0),
            gt.effective_o(crate::machine::LinkClass::CrossSocket)
        );
        // A single rank has zero diameter.
        assert_eq!(m.diameter_of(&[3]), 0.0);
    }

    #[test]
    fn asymmetric_costs_are_symmetrized() {
        let mut cost = CostMatrices::zeros(2);
        cost.o[(0, 1)] = 4.0;
        cost.o[(1, 0)] = 6.0;
        let m = DistanceMetric::from_costs(&cost);
        assert_eq!(m.dist(0, 1), 5.0);
        assert_eq!(m.dist(1, 0), 5.0);
        assert_eq!(m.dist(0, 0), 0.0);
    }

    #[test]
    fn validate_flags_nonpositive() {
        let mut cost = CostMatrices::zeros(3);
        // Leave (0,1) at zero: non-positive distance.
        cost.o[(0, 2)] = 1.0;
        cost.o[(2, 0)] = 1.0;
        cost.o[(1, 2)] = 1.0;
        cost.o[(2, 1)] = 1.0;
        let m = DistanceMetric::from_costs(&cost);
        let v = m.validate(0.0);
        assert!(v
            .iter()
            .any(|x| matches!(x, MetricViolation::NonPositive { i: 0, j: 1, .. })));
    }

    /// A classed metric over a shared grid must agree with the dense
    /// metric built from the decompressed matrix, for every accessor.
    #[test]
    fn classed_metric_matches_dense_equivalent() {
        // 3 ranks, 2 off-diagonal classes + 1 diagonal class.
        let p = 3;
        #[rustfmt::skip]
        let grid = Arc::new(vec![
            2u16, 0, 1,
            0, 2, 0,
            1, 0, 2,
        ]);
        let table = vec![4.0, 9.0, 0.0];
        let classed = DistanceMetric::from_classes(p, Arc::clone(&grid), table.clone());
        let dense = DistanceMetric::from_matrix(DenseMatrix::from_fn(p, |i, j| {
            table[grid[i * p + j] as usize]
        }));
        assert_eq!(classed.p(), dense.p());
        assert_eq!(classed.diameter(), dense.diameter());
        let mut scratch = Vec::new();
        for i in 0..p {
            assert_eq!(classed.row_into(i, &mut scratch), dense.row(i));
            for j in 0..p {
                assert_eq!(classed.dist(i, j), dense.dist(i, j));
            }
        }
        for members in [vec![0, 2], vec![0, 1, 2], vec![1]] {
            assert_eq!(classed.diameter_of(&members), dense.diameter_of(&members));
        }
        assert_eq!(classed.validate(1e-9), dense.validate(1e-9));
    }

    #[test]
    #[should_panic(expected = "use row_into")]
    fn classed_metric_has_no_borrowable_rows() {
        let grid = Arc::new(vec![0u16]);
        let m = DistanceMetric::from_classes(1, grid, vec![0.0]);
        let _ = m.row(0);
    }

    #[test]
    fn row_into_borrows_dense_rows_without_copying() {
        let m = metric_for(&MachineSpec::dual_quad_cluster(2));
        let mut scratch = Vec::new();
        assert_eq!(m.row_into(3, &mut scratch), m.row(3));
        assert!(scratch.is_empty(), "dense backing must not touch scratch");
    }

    #[test]
    fn validate_flags_triangle_violation() {
        let d = DenseMatrix::from_vec(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0]);
        let m = DistanceMetric::from_matrix(d);
        let v = m.validate(0.0);
        assert!(v.iter().any(|x| matches!(
            x,
            MetricViolation::TriangleInequality { i: 0, k: 2, .. }
                | MetricViolation::TriangleInequality { i: 2, k: 0, .. }
        )));
        // With a huge tolerance it passes.
        assert!(m.validate(10.0).is_empty());
    }
}
