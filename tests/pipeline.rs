//! End-to-end integration: the full paper pipeline across all crates.
//!
//! profile (measured on the simulator) → cluster → tune → verify →
//! compile → execute on both backends.

use hbarrier::core::algorithms::Algorithm;
use hbarrier::core::codegen::compile_schedule;
use hbarrier::core::cost::{predict_barrier_cost, CostParams};
use hbarrier::core::verify;
use hbarrier::prelude::*;
use hbarrier::simnet::barrier::{measure_schedule, staggered_delay_check};
use hbarrier::simnet::profiling::{measure_profile, ProfilingConfig};
use hbarrier::simnet::NoiseModel;
use hbarrier::threadrun::harness;

/// The complete workflow of Fig. 1 on a 2-node machine, with a *measured*
/// (noisy) profile rather than a closed-form one.
#[test]
fn measured_profile_to_tuned_barrier_end_to_end() {
    let machine = MachineSpec::dual_quad_cluster(2);
    let mapping = RankMapping::RoundRobin;
    let p = 12;

    // Part 1 of the method: collect the topology map.
    let profile = measure_profile(
        &machine,
        &mapping,
        p,
        NoiseModel::realistic(41),
        &ProfilingConfig::fast(),
    );
    assert_eq!(profile.p, p);

    // Part 2: tune, verify, predict.
    let tuned = tune_hybrid(&profile, &TunerConfig::default());
    assert!(verify::is_barrier(&tuned.schedule));
    assert!(tuned.predicted_cost > 0.0);

    // Execute on the simulator under the same placement; the prediction
    // and the measurement must agree within the error band the paper
    // reports (hundreds of µs absolute; we allow 3x relative slack since
    // the profile itself is noisy).
    let cfg = SimConfig {
        machine,
        mapping,
        noise: NoiseModel::realistic(42),
    };
    let mut world = SimWorld::new(cfg, p);
    let measured = measure_schedule(&mut world, &tuned.schedule, 10);
    assert!(measured > 0.0);
    let ratio = measured / tuned.predicted_cost;
    assert!(
        (0.33..3.0).contains(&ratio),
        "prediction {} vs measured {measured}",
        tuned.predicted_cost
    );

    // The tuned barrier must also beat (or match) the neutral tree here.
    let members: Vec<usize> = (0..p).collect();
    let neutral = Algorithm::Tree.full_schedule(p, &members);
    let neutral_time = measure_schedule(&mut world, &neutral, 10);
    assert!(
        measured < neutral_time * 1.15,
        "hybrid {measured} not competitive with neutral {neutral_time}"
    );
}

/// The same compiled programs run on the simulator and on real threads;
/// both must satisfy the staggered-delay synchronization property.
#[test]
fn both_backends_agree_on_synchronization() {
    let machine = MachineSpec::dual_quad_cluster(1);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
    let tuned = tune_hybrid(&profile, &TunerConfig::default());

    // Simulator backend.
    let mut world = SimWorld::new(SimConfig::exact(machine, RankMapping::Block), profile.p);
    let (sim_ok, _) = staggered_delay_check(&mut world, &tuned.schedule, 10_000_000);
    assert!(sim_ok);

    // Thread backend (smaller delay to keep wall-clock short; 8 threads).
    let (thr_ok, _) =
        harness::staggered_delay_check(&tuned.schedule, std::time::Duration::from_millis(10));
    assert!(thr_ok);
}

/// Predictions from a profile distinguish the three paper algorithms the
/// same way simulated measurements do (the §VI validation claim), on a
/// 4-node machine.
#[test]
fn prediction_orders_algorithms_like_measurement() {
    let machine = MachineSpec::dual_quad_cluster(4);
    let mapping = RankMapping::RoundRobin;
    let p = 32;
    let profile = TopologyProfile::from_ground_truth_for(&machine, &mapping, p);
    let members: Vec<usize> = (0..p).collect();
    let params = CostParams::default();

    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for alg in Algorithm::PAPER_SET {
        let sched = alg.full_schedule(p, &members);
        predicted.push((
            alg.tag(),
            predict_barrier_cost(&sched, &profile.cost, &params, None).barrier_cost,
        ));
        let mut world = SimWorld::new(SimConfig::exact(machine.clone(), mapping.clone()), p);
        measured.push((alg.tag(), measure_schedule(&mut world, &sched, 5)));
    }
    let order = |mut v: Vec<(String, f64)>| {
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        v.into_iter().map(|x| x.0).collect::<Vec<_>>()
    };
    assert_eq!(order(predicted), order(measured));
}

/// Profiles survive a disk round trip and still drive the tuner to the
/// same schedule (the off-line tuning workflow of Fig. 1).
#[test]
fn stored_profile_reproduces_tuning() {
    let machine = MachineSpec::dual_hex_cluster(2);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
    let dir = std::env::temp_dir().join("hbarrier_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    profile.save(&path).unwrap();
    let reloaded = TopologyProfile::load(&path).unwrap();
    let a = tune_hybrid(&profile, &TunerConfig::default());
    let b = tune_hybrid(&reloaded, &TunerConfig::default());
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.predicted_cost, b.predicted_cost);
    std::fs::remove_file(&path).ok();
}

/// The generated per-rank programs match the schedule's signal counts,
/// crate boundaries notwithstanding.
#[test]
fn compiled_programs_conserve_signals() {
    let machine = MachineSpec::dual_quad_cluster(3);
    let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, 22);
    let tuned = tune_hybrid(&profile, &TunerConfig::default());
    let programs = compile_schedule(&tuned.schedule).expect("tuned schedule compiles");
    let sends: usize = programs.iter().map(|p| p.send_count()).sum();
    let recvs: usize = programs.iter().map(|p| p.recv_count()).sum();
    assert_eq!(sends, tuned.schedule.total_signals());
    assert_eq!(recvs, tuned.schedule.total_signals());
}
