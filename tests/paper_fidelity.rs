//! Fidelity tests: the exact artifacts printed in the paper.
//!
//! Figures 2–4 give the matrix encodings of the three component
//! algorithms for |P| = 4; §V and §VII state structural facts (stage
//! counts, Eq. 3, the root-dissemination rule, Fig. 10's cluster layout).
//! These tests pin our implementation to those artifacts.

use hbarrier::core::algorithms::Algorithm;
use hbarrier::core::compose::{tune_hybrid, TunerConfig};
use hbarrier::core::verify;
use hbarrier::matrix::BoolMatrix;
use hbarrier::prelude::*;

fn rows(rows: &[[u8; 4]]) -> BoolMatrix {
    BoolMatrix::from_rows(
        &rows
            .iter()
            .map(|r| r.iter().map(|&v| v == 1).collect::<Vec<bool>>())
            .collect::<Vec<_>>(),
    )
}

/// Figure 2: the linear barrier for |P| = 4 is S0 (everyone signals the
/// master) followed by S1 = S0ᵀ.
#[test]
fn figure2_linear_barrier_matrices() {
    let members = [0, 1, 2, 3];
    let sched = Algorithm::Linear.full_schedule(4, &members);
    assert_eq!(sched.len(), 2);
    let s0 = rows(&[[0, 0, 0, 0], [1, 0, 0, 0], [1, 0, 0, 0], [1, 0, 0, 0]]);
    assert_eq!(sched.stages()[0].matrix, s0);
    assert_eq!(sched.stages()[1].matrix, s0.transpose());
}

/// Figure 3: the dissemination barrier for |P| = 4.
#[test]
fn figure3_dissemination_barrier_matrices() {
    let members = [0, 1, 2, 3];
    let sched = Algorithm::Dissemination.full_schedule(4, &members);
    assert_eq!(sched.len(), 2, "no departure phase");
    let s0 = rows(&[[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0]]);
    let s1 = rows(&[[0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0], [0, 1, 0, 0]]);
    assert_eq!(sched.stages()[0].matrix, s0);
    assert_eq!(sched.stages()[1].matrix, s1);
}

/// Figure 4: the tree barrier for |P| = 4: S0, S1, S2 = S1ᵀ, S3 = S0ᵀ.
#[test]
fn figure4_tree_barrier_matrices() {
    let members = [0, 1, 2, 3];
    let sched = Algorithm::Tree.full_schedule(4, &members);
    assert_eq!(sched.len(), 4);
    let s0 = rows(&[[0, 0, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0], [0, 0, 1, 0]]);
    let s1 = rows(&[[0, 0, 0, 0], [0, 0, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0]]);
    assert_eq!(sched.stages()[0].matrix, s0);
    assert_eq!(sched.stages()[1].matrix, s1);
    assert_eq!(sched.stages()[2].matrix, s1.transpose());
    assert_eq!(sched.stages()[3].matrix, s0.transpose());
}

/// §V-B stage counts: linear 2 stages, tree 2·⌈log₂P⌉, dissemination
/// ⌈log₂P⌉ — at the paper's largest sizes.
#[test]
fn section5_stage_counts_at_paper_sizes() {
    for (p, log2) in [(64usize, 6usize), (120, 7)] {
        let members: Vec<usize> = (0..p).collect();
        assert_eq!(Algorithm::Linear.full_schedule(p, &members).len(), 2);
        assert_eq!(Algorithm::Tree.full_schedule(p, &members).len(), 2 * log2);
        assert_eq!(
            Algorithm::Dissemination.full_schedule(p, &members).len(),
            log2
        );
    }
}

/// Eq. 3 acceptance on the paper's own examples: all three |P|=4
/// encodings pass, and removing any stage breaks them.
#[test]
fn equation3_acceptance_and_necessity() {
    let members = [0, 1, 2, 3];
    for alg in Algorithm::PAPER_SET {
        let sched = alg.full_schedule(4, &members);
        assert!(verify::is_barrier(&sched), "{alg}");
        // Dropping the final stage must break the barrier.
        let mut truncated = hbarrier::core::schedule::BarrierSchedule::new(4);
        for s in &sched.stages()[..sched.len() - 1] {
            truncated.push(s.clone());
        }
        assert!(!verify::is_barrier(&truncated), "{alg} without last stage");
    }
}

/// §VII-A: with the paper's 35 % sparseness, both test systems cluster at
/// node granularity, "with rank 0 as a member of the first cluster".
#[test]
fn section7_clustering_matches_paper() {
    use hbarrier::core::clustering::{sss_clusters, SSS_DEFAULT_SPARSENESS};
    use hbarrier::topo::metric::DistanceMetric;
    for (machine, p, nodes) in [
        (MachineSpec::dual_quad_cluster(8), 64usize, 8usize),
        (MachineSpec::dual_hex_cluster(10), 120, 10),
    ] {
        let prof = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let metric = DistanceMetric::from_costs(&prof.cost);
        let members: Vec<usize> = (0..p).collect();
        let clusters = sss_clusters(&metric, &members, SSS_DEFAULT_SPARSENESS, metric.diameter());
        assert_eq!(clusters.len(), nodes);
        assert_eq!(clusters[0][0], 0);
    }
}

/// §VII-B: dissemination wins the root of a uniform high-latency top
/// level (the ×1 multiplier rule). This holds on cluster A (8 node
/// representatives). On cluster B's 10 representatives our calibration
/// tips the greedy score to the linear barrier at the very top — the
/// same kind of top-level algorithm change the paper itself observes in
/// Fig. 11 ("a change of top-level algorithms was found profitable");
/// EXPERIMENTS.md discusses the deviation. Here we assert cluster A plus
/// the structural consequences of the rule.
#[test]
fn section7_root_dissemination_rule() {
    let machine = MachineSpec::dual_quad_cluster(8);
    let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
    let tuned = tune_hybrid(&prof, &TunerConfig::default());
    assert_eq!(tuned.root_algorithm(), Some(Algorithm::Dissemination));
    // No departure stages transpose the root dissemination: the final
    // schedule has fewer than 2x the arrival stage count.
    let total = tuned.schedule.len();
    let arrival = tuned
        .schedule
        .stages()
        .iter()
        .filter(|s| s.mode == hbarrier::topo::cost::SendMode::General)
        .count();
    assert!(total < 2 * arrival, "root stages must not be transposed");
}

/// On cluster B the greedy selection is still self-consistent: whatever
/// it picks at the root has the lowest score among applicable
/// candidates, and the ×1 rule makes dissemination beat the tree there.
#[test]
fn section7_root_choice_is_greedy_optimal_on_cluster_b() {
    use hbarrier::core::cost::predict_arrival_cost;
    let machine = MachineSpec::dual_hex_cluster(10);
    let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
    let tuned = tune_hybrid(&prof, &TunerConfig::default());
    let root = tuned
        .choices
        .iter()
        .find(|c| c.depth == 0)
        .expect("root choice");
    let params = hbarrier::core::cost::CostParams::default();
    let score_of = |alg: Algorithm| {
        let arrival = alg.arrival_embedded(prof.p, &root.participants);
        let base = predict_arrival_cost(prof.p, &arrival, &prof.cost, &params);
        if alg.needs_departure() {
            base * 2.0
        } else {
            base
        }
    };
    let best = Algorithm::PAPER_SET
        .iter()
        .map(|&a| (a, score_of(a)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("candidates");
    assert_eq!(root.algorithm, best.0, "greedy picked a non-minimal root");
    // The ×1 rule: dissemination at the root outranks the tree.
    assert!(score_of(Algorithm::Dissemination) < score_of(Algorithm::Tree));
}

/// Fig. 10's case: 22 processes round-robin on 3 nodes produce exactly
/// the member sets the paper lists (ranks ≡ node index mod 3; e.g.
/// "ranks 5, 8, 11, 14, 17 and 20" share node 2 with representative 2).
#[test]
fn figure10_round_robin_member_sets() {
    let machine = MachineSpec::dual_quad_cluster(3);
    let prof = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, 22);
    let tuned = tune_hybrid(&prof, &TunerConfig::default());
    assert_eq!(tuned.tree.children.len(), 3);
    let node2: Vec<usize> = tuned.tree.children[2].members.clone();
    assert_eq!(node2, vec![2, 5, 8, 11, 14, 17, 20]);
    assert_eq!(tuned.tree.children[2].representative(), 2);
}
