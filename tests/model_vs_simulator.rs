//! Consistency between the Eq. 1–3 analytic model and the discrete-event
//! simulator — the property Section VI of the paper establishes
//! empirically ("the combined model clearly captures the interaction
//! between the algorithm and topology").
//!
//! Both are *models*; they are not expected to agree exactly (the
//! simulator has NIC queueing and rendezvous acknowledgements the
//! analytic recurrence approximates). What must hold, as in the paper:
//! same order of magnitude everywhere, and agreement on algorithm
//! *rankings* wherever the gap between algorithms is meaningful.

use hbarrier::core::algorithms::Algorithm;
use hbarrier::core::cost::{predict_barrier_cost, CostParams};
use hbarrier::prelude::*;
use hbarrier::simnet::barrier::measure_schedule;
use proptest::prelude::*;

fn ratio_bounds_hold(machine: &MachineSpec, p: usize) {
    let mapping = RankMapping::RoundRobin;
    let profile = TopologyProfile::from_ground_truth_for(machine, &mapping, p);
    let members: Vec<usize> = (0..p).collect();
    let params = CostParams::default();
    for alg in Algorithm::PAPER_SET {
        let sched = alg.full_schedule(p, &members);
        let predicted = predict_barrier_cost(&sched, &profile.cost, &params, None).barrier_cost;
        let mut world = SimWorld::new(SimConfig::exact(machine.clone(), mapping.clone()), p);
        let measured = measure_schedule(&mut world, &sched, 3);
        let ratio = measured / predicted;
        assert!(
            (0.3..3.5).contains(&ratio),
            "{alg} p={p} on {}: predicted {predicted}, measured {measured} (ratio {ratio})",
            machine.name
        );
    }
}

#[test]
fn model_tracks_simulator_on_paper_machines() {
    for (machine, sizes) in [
        (MachineSpec::dual_quad_cluster(8), vec![8usize, 22, 40, 64]),
        (MachineSpec::dual_hex_cluster(10), vec![12, 60, 120]),
    ] {
        for &p in &sizes {
            ratio_bounds_hold(&machine, p);
        }
    }
}

#[test]
fn model_and_simulator_agree_on_large_gaps() {
    // Whenever two algorithms differ by 2x in one model, the other model
    // must place them in the same order (the decision-quality property
    // the tuner relies on).
    let machine = MachineSpec::dual_quad_cluster(8);
    let mapping = RankMapping::RoundRobin;
    for p in [16usize, 32, 48, 64] {
        let profile = TopologyProfile::from_ground_truth_for(&machine, &mapping, p);
        let members: Vec<usize> = (0..p).collect();
        let params = CostParams::default();
        let mut results = Vec::new();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            let predicted = predict_barrier_cost(&sched, &profile.cost, &params, None).barrier_cost;
            let mut world = SimWorld::new(SimConfig::exact(machine.clone(), mapping.clone()), p);
            let measured = measure_schedule(&mut world, &sched, 3);
            results.push((alg, predicted, measured));
        }
        for i in 0..results.len() {
            for j in 0..results.len() {
                let (a, pa, ma) = results[i];
                let (b, pb, mb) = results[j];
                if pa * 2.0 < pb {
                    assert!(
                        ma < mb,
                        "p={p}: model says {a} ≪ {b} ({pa} vs {pb}) but simulator disagrees ({ma} vs {mb})"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random machines, random paper algorithm: the ratio bound holds.
    #[test]
    fn ratio_bound_on_random_machines(
        nodes in 1usize..4,
        sockets in 1usize..3,
        cores in 1usize..4,
        alg_idx in 0usize..3,
    ) {
        let machine = MachineSpec::new(nodes, sockets, cores);
        let p = machine.total_cores();
        prop_assume!(p >= 2);
        let mapping = RankMapping::RoundRobin;
        let profile = TopologyProfile::from_ground_truth(&machine, &mapping);
        let members: Vec<usize> = (0..p).collect();
        let alg = Algorithm::PAPER_SET[alg_idx];
        let sched = alg.full_schedule(p, &members);
        let predicted =
            predict_barrier_cost(&sched, &profile.cost, &CostParams::default(), None).barrier_cost;
        let mut world = SimWorld::new(SimConfig::exact(machine, mapping), p);
        let measured = measure_schedule(&mut world, &sched, 2);
        let ratio = measured / predicted;
        prop_assert!((0.2..5.0).contains(&ratio), "{alg} p={p}: ratio {ratio}");
    }
}
