//! Integration tests of the `hbar` command-line tool: the full
//! profile → tune → verify → predict → simulate → codegen workflow, as a
//! downstream user would drive it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hbar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hbar"))
        .args(args)
        .output()
        .expect("hbar binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbar_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = workdir("workflow");
    let profile = dir.join("prof.json");
    let schedule = dir.join("sched.json");
    let profile_s = profile.to_str().unwrap();
    let schedule_s = schedule.to_str().unwrap();

    // profile (exact machine: fast and deterministic for the test)
    let o = hbar(&[
        "profile",
        "--machine",
        "2x2x2",
        "--mapping",
        "rr",
        "--out",
        profile_s,
        "--exact-machine",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("profiled 8 ranks"));
    assert!(profile.exists());

    // tune
    let o = hbar(&["tune", "--profile", profile_s, "--out", schedule_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("tuned hybrid for 8 ranks"));
    assert!(schedule.exists());

    // verify
    let o = hbar(&["verify", "--schedule", schedule_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("valid barrier: 8 ranks"));

    // predict
    let o = hbar(&["predict", "--profile", profile_s, "--schedule", schedule_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("predicted barrier cost"));

    // simulate
    let o = hbar(&[
        "simulate",
        "--profile",
        profile_s,
        "--schedule",
        schedule_s,
        "--reps",
        "3",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("measured barrier cost"));

    // codegen (both languages)
    let o = hbar(&[
        "codegen",
        "--schedule",
        schedule_s,
        "--lang",
        "c",
        "--name",
        "b8",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("void b8(MPI_Comm comm)"));
    assert!(stdout(&o).contains("MPI_Issend"));
    let o = hbar(&["codegen", "--schedule", schedule_s, "--lang", "rust"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("pub fn generated_barrier"));

    // heatmap
    let o = hbar(&["heatmap", "--profile", profile_s, "--matrix", "l"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("L matrix"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn measured_profile_via_cli_fast_mode() {
    let dir = workdir("measured");
    let profile = dir.join("prof.json");
    let o = hbar(&[
        "profile",
        "--machine",
        "1x2x2",
        "--mapping",
        "block",
        "--ranks",
        "4",
        "--out",
        profile.to_str().unwrap(),
        "--fast",
        "--seed",
        "7",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    // The stored profile parses and has the right size.
    let prof = hbarrier::topo::profile::TopologyProfile::load(&profile).unwrap();
    assert_eq!(prof.p, 4);
    assert!(prof.cost.o[(0, 1)] > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_rejects_broken_schedule() {
    let dir = workdir("broken");
    let schedule = dir.join("bad.json");
    // An arrival-only linear pattern (not a barrier).
    use hbarrier::core::schedule::{BarrierSchedule, Stage};
    use hbarrier::matrix::BoolMatrix;
    let mut sched = BarrierSchedule::new(3);
    sched.push(Stage::arrival(BoolMatrix::from_edges(3, &[(1, 0), (2, 0)])));
    std::fs::write(&schedule, serde_json::to_string(&sched).unwrap()).unwrap();
    let o = hbar(&["verify", "--schedule", schedule.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("NOT a barrier"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let o = hbar(&[]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("usage"));

    let o = hbar(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));

    let o = hbar(&["tune", "--profile"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("needs a value"));

    let o = hbar(&["profile", "--machine", "0x1x1", "--out", "/tmp/x.json"]);
    assert!(!o.status.success());

    let o = hbar(&["predict", "--schedule", "/nonexistent.json"]);
    assert!(!o.status.success());
    assert!(
        stderr(&o).contains("missing required flag --profile") || stderr(&o).contains("cannot")
    );
}

#[test]
fn search_subcommand_finds_a_barrier() {
    let dir = workdir("search");
    let profile = dir.join("prof.json");
    let schedule = dir.join("opt.json");
    let o = hbar(&[
        "profile",
        "--machine",
        "2x1x2",
        "--mapping",
        "block",
        "--out",
        profile.to_str().unwrap(),
        "--exact-machine",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = hbar(&[
        "search",
        "--profile",
        profile.to_str().unwrap(),
        "--out",
        schedule.to_str().unwrap(),
        "--max-stages",
        "5",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("search complete"));
    let o = hbar(&["verify", "--schedule", schedule.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_tune_client_round_trip() {
    use std::io::BufRead;

    // Bind on port 0 and parse the kernel-assigned address from the
    // daemon's first stdout line, exactly as a scripted caller would.
    let mut server = Command::new(env!("CARGO_BIN_EXE_hbar"))
        .args(["serve", "--listen", "127.0.0.1:0", "--cache-cap", "64"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve daemon spawns");
    let mut banner = String::new();
    std::io::BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut banner)
        .expect("daemon prints its address");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"))
        .to_string();

    let o = hbar(&[
        "tune-client",
        "--connect",
        &addr,
        "--count",
        "8",
        "--requests",
        "32",
        "--check",
        "all",
        "--stats",
        "--shutdown",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("32 parity-checked"), "{out}");
    assert!(out.contains("server shut down"), "{out}");
    // The shutdown frame must take the daemon down cleanly.
    let status = server.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
}

#[test]
fn preset_machines_parse() {
    let dir = workdir("presets");
    let profile = dir.join("a.json");
    let o = hbar(&[
        "profile",
        "--machine",
        "cluster-a",
        "--ranks",
        "16",
        "--out",
        profile.to_str().unwrap(),
        "--exact-machine",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let prof = hbarrier::topo::profile::TopologyProfile::load(&profile).unwrap();
    assert_eq!(prof.machine.nodes, 8);
    assert_eq!(prof.machine.cores_per_node(), 8);
    std::fs::remove_dir_all(&dir).ok();
}
