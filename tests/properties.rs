//! Property-based tests over the core data structures and invariants.

use hbarrier::core::algorithms::Algorithm;
use hbarrier::core::codegen::compile_schedule;
use hbarrier::core::cost::{predict_barrier_cost, CostParams};
use hbarrier::core::schedule::{BarrierSchedule, Stage};
use hbarrier::core::verify;
use hbarrier::matrix::{knowledge_closure, BoolMatrix, DenseMatrix};
use hbarrier::prelude::*;
use hbarrier::topo::cost::CostMatrices;
use hbarrier::topo::metric::DistanceMetric;
use proptest::prelude::*;

/// Random machine shapes within the paper's scale.
fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    (1usize..=4, 1usize..=2, 1usize..=6)
        .prop_map(|(nodes, sockets, cores)| MachineSpec::new(nodes, sockets, cores))
}

/// Random edge lists over n ranks without self-loops.
fn arb_stage(n: usize) -> impl Strategy<Value = BoolMatrix> {
    prop::collection::vec((0..n, 0..n), 0..n * 2).prop_map(move |edges| {
        let filtered: Vec<(usize, usize)> = edges.into_iter().filter(|(i, j)| i != j).collect();
        BoolMatrix::from_edges(n, &filtered)
    })
}

/// A random cost profile: positive, symmetric O/L with O_ii small.
fn arb_costs(n: usize) -> impl Strategy<Value = CostMatrices> {
    prop::collection::vec(1.0f64..100.0, n * n).prop_map(move |vals| {
        let mut o = DenseMatrix::from_vec(n, vals.clone());
        let mut l = DenseMatrix::from_fn(n, |i, j| vals[(i * 31 + j * 7) % vals.len()] / 10.0);
        o.symmetrize();
        l.symmetrize();
        for i in 0..n {
            o[(i, i)] = 0.1;
            l[(i, i)] = 0.0;
        }
        CostMatrices { o, l }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transposition is an involution and preserves signal counts.
    #[test]
    fn transpose_involution(n in 1usize..40, edges in prop::collection::vec((0usize..40, 0usize..40), 0..80)) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .filter(|(i, j)| *i < n && *j < n && i != j).collect();
        let m = BoolMatrix::from_edges(n, &edges);
        prop_assert_eq!(&m.transpose().transpose(), &m);
        prop_assert_eq!(m.transpose().popcount(), m.popcount());
    }

    /// The boolean product never loses knowledge: K ⊆ K + K·S.
    #[test]
    fn knowledge_closure_is_monotone(n in 1usize..20, stages in prop::collection::vec(prop::collection::vec((0usize..20, 0usize..20), 0..30), 0..6)) {
        let stages: Vec<BoolMatrix> = stages.into_iter().map(|edges| {
            let edges: Vec<(usize, usize)> = edges.into_iter()
                .filter(|(i, j)| *i < n && *j < n && i != j).collect();
            BoolMatrix::from_edges(n, &edges)
        }).collect();
        let mut prev = BoolMatrix::identity(n);
        for s in &stages {
            let mut next = prev.clone();
            next.or_assign(&prev.and_or_product(s));
            // prev ⊆ next
            prop_assert_eq!(prev.and(&next), prev.clone());
            prev = next;
        }
        prop_assert_eq!(prev, knowledge_closure(n, &stages));
    }

    /// Every algorithm produces a valid barrier over any member subset.
    #[test]
    fn algorithms_always_synchronize_members(
        n in 2usize..24,
        selector in prop::collection::vec(any::<bool>(), 24),
        alg_idx in 0usize..5,
    ) {
        let members: Vec<usize> = (0..n).filter(|&r| selector[r]).collect();
        prop_assume!(members.len() >= 2);
        let algs = [Algorithm::Linear, Algorithm::Tree, Algorithm::Dissemination,
                    Algorithm::KAry(3), Algorithm::Butterfly];
        let alg = algs[alg_idx];
        prop_assume!(alg.applicable(members.len()));
        let sched = alg.full_schedule(n, &members);
        prop_assert!(verify::synchronizes_subset(&sched, &members));
    }

    /// Appending the reversed-transposed departure to any arrival
    /// sequence whose root collects all knowledge yields a full barrier.
    #[test]
    fn arrival_plus_transposed_departure_is_barrier(p in 2usize..32) {
        for alg in [Algorithm::Tree, Algorithm::Linear, Algorithm::KAry(4)] {
            let members: Vec<usize> = (0..p).collect();
            let mut sched = BarrierSchedule::new(p);
            for m in alg.arrival_embedded(p, &members) {
                sched.push(Stage::arrival(m));
            }
            let dep = sched.departure_reversed(0);
            sched.append(&dep);
            prop_assert!(verify::is_barrier(&sched), "{alg} p={p}");
        }
    }

    /// The tuner always emits verified barriers over random machines and
    /// random (valid) cost profiles, and its prediction is positive.
    #[test]
    fn tuner_output_is_always_valid(machine in arb_machine(), seed in 0u64..1000) {
        let p = machine.total_cores();
        prop_assume!(p >= 2);
        let mut profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        // Perturb the profile deterministically to exercise odd shapes.
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    let f = 1.0 + 0.3 * (((seed + (i * p + j) as u64) % 7) as f64 / 7.0);
                    profile.cost.o[(i, j)] *= f;
                    profile.cost.l[(i, j)] *= f;
                }
            }
        }
        profile.cost.symmetrize();
        let tuned = tune_hybrid(&profile, &TunerConfig::default());
        prop_assert!(verify::is_barrier(&tuned.schedule));
        prop_assert!(tuned.predicted_cost > 0.0);
        // Compiled programs conserve signals.
        let programs = compile_schedule(&tuned.schedule).expect("tuned schedule compiles");
        let sends: usize = programs.iter().map(|rp| rp.send_count()).sum();
        prop_assert_eq!(sends, tuned.schedule.total_signals());
    }

    /// Cost prediction is monotone in arrival skews: delaying any rank
    /// never finishes the barrier earlier.
    #[test]
    fn prediction_monotone_in_skews(
        costs in arb_costs(6),
        skew_rank in 0usize..6,
        skew in 0.0f64..50.0,
    ) {
        let members: Vec<usize> = (0..6).collect();
        let sched = Algorithm::Tree.full_schedule(6, &members);
        let params = CostParams::default();
        let base = predict_barrier_cost(&sched, &costs, &params, None);
        let mut skews = vec![0.0; 6];
        skews[skew_rank] = skew;
        let delayed = predict_barrier_cost(&sched, &costs, &params, Some(&skews));
        prop_assert!(delayed.barrier_cost >= base.barrier_cost - 1e-12);
    }

    /// Per-rank exit times are never before the critical stage frontier
    /// start, and the barrier cost equals the max exit.
    #[test]
    fn prediction_internal_consistency(costs in arb_costs(8), stage in arb_stage(8)) {
        prop_assume!(!stage.is_zero());
        let mut sched = BarrierSchedule::new(8);
        sched.push(Stage::arrival(stage));
        let pred = predict_barrier_cost(&sched, &costs, &CostParams::default(), None);
        let max_exit = pred.rank_exit.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((pred.barrier_cost - max_exit).abs() < 1e-12);
        prop_assert!(pred.barrier_cost >= 0.0);
    }

    /// The symmetrized metric derived from any symmetric positive cost
    /// matrix has zero diagonal and symmetric distances.
    #[test]
    fn metric_axioms_hold_structurally(costs in arb_costs(7)) {
        let metric = DistanceMetric::from_costs(&costs);
        for i in 0..7 {
            prop_assert_eq!(metric.dist(i, i), 0.0);
            for j in 0..7 {
                prop_assert_eq!(metric.dist(i, j), metric.dist(j, i));
                if i != j {
                    prop_assert!(metric.dist(i, j) > 0.0);
                }
            }
        }
        prop_assert!(metric.diameter() > 0.0);
    }

    /// Embedding a local matrix into a global space and extracting the
    /// submatrix is the identity.
    #[test]
    fn embed_submatrix_roundtrip(
        local_n in 1usize..8,
        global_n in 8usize..20,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random injective map and edges from seed.
        let mut map: Vec<usize> = (0..global_n).collect();
        let mut s = seed;
        for i in (1..map.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            map.swap(i, (s as usize) % (i + 1));
        }
        map.truncate(local_n);
        let mut local = BoolMatrix::zeros(local_n);
        for i in 0..local_n {
            for j in 0..local_n {
                if i != j && (seed >> ((i * local_n + j) % 60)) & 1 == 1 {
                    local.set(i, j, true);
                }
            }
        }
        let global = local.embed(global_n, &map);
        prop_assert_eq!(global.submatrix(&map), local);
    }
}
