//! Closed-loop run-time adaptation (§VIII of the paper, end to end):
//!
//! deploy a tuned barrier → conditions change → live traces re-estimate
//! link costs → the adaptive controller prices and performs a re-tune →
//! the new schedule measurably beats the old one under the new
//! conditions.

use hbarrier::core::adaptive::{AdaptiveBarrier, AdaptiveConfig};
use hbarrier::prelude::*;
use hbarrier::simnet::barrier::schedule_programs;
use hbarrier::simnet::ns_to_sec;

/// A machine whose inter-node fabric is congested by `factor`.
fn congested(base: &MachineSpec, factor: f64) -> MachineSpec {
    let mut m = base.clone();
    let c = &mut m.ground_truth.inter_node;
    c.wire_ns = (c.wire_ns as f64 * factor) as u64;
    c.nic_tx_ns = (c.nic_tx_ns as f64 * factor) as u64;
    c.nic_rx_ns = (c.nic_rx_ns as f64 * factor) as u64;
    c.cpu_recv_ns = (c.cpu_recv_ns as f64 * factor) as u64;
    m
}

#[test]
fn trace_driven_retuning_loop() {
    let machine = MachineSpec::dual_quad_cluster(3);
    let mapping = RankMapping::RoundRobin;
    let p = 22;
    let profile = TopologyProfile::from_ground_truth_for(&machine, &mapping, p);
    let members: Vec<usize> = (0..p).collect();

    let mut controller = AdaptiveBarrier::new(
        &profile.cost,
        &members,
        TunerConfig::default(),
        AdaptiveConfig {
            window: 4,
            degradation_threshold: 1.5,
            retune_overhead: 1e-3,
        },
    );

    // Conditions change: the network is now heavily congested.
    let busy_machine = congested(&machine, 8.0);
    let mut busy_world = SimWorld::new(SimConfig::exact(busy_machine.clone(), mapping.clone()), p);

    // Run the deployed barrier under congestion, collecting traces and
    // observations.
    let mut trace_costs = profile.cost.clone();
    for _ in 0..4 {
        let programs = schedule_programs(controller.schedule(), 1);
        let (result, trace) = busy_world.run_traced(&programs).expect("barrier runs");
        controller.observe(ns_to_sec(result.makespan()));
        // Blend the observed per-message latencies into the cost model —
        // the paper's "incremental cost updates at run time".
        trace_costs = trace.refresh_costs(&trace_costs, 0.5);
    }
    assert!(controller.is_degraded(), "congestion must be detected");

    // The trace-refreshed O estimates moved toward the congested truth on
    // every *inter-node* link the barrier exercised (the links congestion
    // changed). Trace estimates carry a small systematic offset — they
    // exclude the sender's injection time — so unchanged intra-node links
    // are only required to stay within that offset of the truth.
    let true_busy = TopologyProfile::from_ground_truth_for(&busy_machine, &mapping, p);
    let cores = mapping.cores(&machine, p);
    let mut updated_inter_pairs = 0;
    for i in 0..p {
        for j in 0..p {
            if i == j || trace_costs.o[(i, j)] == profile.cost.o[(i, j)] {
                continue;
            }
            let inter = cores[i].node != cores[j].node;
            let before = (profile.cost.o[(i, j)] - true_busy.cost.o[(i, j)]).abs();
            let after = (trace_costs.o[(i, j)] - true_busy.cost.o[(i, j)]).abs();
            if inter {
                updated_inter_pairs += 1;
                assert!(
                    after < before,
                    "inter-node ({i},{j}): refresh moved away from truth ({after} !< {before})"
                );
            } else {
                assert!(after < 1e-6, "intra-node ({i},{j}): deviation {after}");
            }
        }
    }
    assert!(
        updated_inter_pairs > 0,
        "traces must update the inter-node pairs the barrier used"
    );

    // The trace estimates detect drift and flag re-profiling; the actual
    // re-tune uses a full fresh profile of the congested fabric (the
    // trace only re-measures links the old schedule used and cannot see
    // the congested `L`, so tuning from it alone could mislead — the
    // reason §VIII couples incremental updates with re-evaluation).
    let old_schedule = controller.schedule().clone();
    let decision = controller.retune_if_profitable(&true_busy.cost, 1e6);
    assert!(decision.retune, "{decision:?}");

    // The re-tuned schedule must not lose to the stale one under the
    // *actual* congested conditions.
    let programs_old = schedule_programs(&old_schedule, 5);
    let programs_new = schedule_programs(controller.schedule(), 5);
    let t_old = busy_world.run(&programs_old).expect("runs").finish;
    let t_new = busy_world.run(&programs_new).expect("runs").finish;
    let (m_old, m_new) = (
        *t_old.iter().max().unwrap() as f64,
        *t_new.iter().max().unwrap() as f64,
    );
    assert!(
        m_new <= m_old * 1.10,
        "re-tuned barrier slower under congestion: {m_new} vs {m_old}"
    );
}
