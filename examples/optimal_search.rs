//! Greedy hybrid vs exhaustive optimum (§VII-B's road not taken).
//!
//! The paper chooses greedy composition over searching "the entire space
//! of admissible matrix sequences". For small rank counts the search is
//! tractable; this example quantifies the gap on a two-node machine.
//!
//! ```text
//! cargo run --release --example optimal_search
//! ```

use hbarrier::core::compose::{search_optimal_barrier, SearchConfig};
use hbarrier::prelude::*;

fn main() {
    // A small heterogeneous platform: 2 nodes × 1 socket × 2 cores.
    // (Exhaustive search is exponential; p = 4 completes in milliseconds,
    // p = 6 already needs minutes and a raised expansion cap.)
    let machine = MachineSpec::new(2, 1, 2);
    let mapping = RankMapping::Block;
    let profile = TopologyProfile::from_ground_truth(&machine, &mapping);
    let p = profile.p;
    println!("platform: {} ({p} ranks)", machine.name);

    // Greedy hybrid (the paper's construction).
    let greedy = tune_hybrid(&profile, &TunerConfig::default());
    println!(
        "greedy hybrid:    {} stages, {} signals, predicted {:.2} us",
        greedy.schedule.len(),
        greedy.schedule.total_signals(),
        greedy.predicted_cost * 1e6
    );

    // Exhaustive search over one-signal-per-rank Eq. 1 stages, seeded
    // with the greedy incumbent.
    let t0 = std::time::Instant::now();
    let result = search_optimal_barrier(
        &profile.cost,
        &SearchConfig {
            max_stages: 5,
            ..SearchConfig::default()
        },
        Some(&greedy.schedule),
    );
    println!(
        "exhaustive search: {} stages, {} signals, predicted {:.2} us \
         ({} states in {:.2?}, {})",
        result.schedule.len(),
        result.schedule.total_signals(),
        result.cost * 1e6,
        result.expansions,
        t0.elapsed(),
        if result.complete {
            "complete"
        } else {
            "truncated"
        }
    );
    assert!(result.schedule.is_barrier());
    let gap = greedy.predicted_cost / result.cost;
    println!(
        "greedy is within {:.2}x of the restricted-space optimum",
        gap
    );
    println!("\noptimal schedule found:\n{}", result.schedule);
}
