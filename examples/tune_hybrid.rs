//! The Fig. 10 walkthrough: watch the greedy composer build a
//! hierarchical, customized barrier for 22 processes round-robin on
//! 3 dual quad-core nodes, then inspect the generated code.
//!
//! ```text
//! cargo run --release --example tune_hybrid
//! ```

use hbarrier::core::codegen::{compile_schedule, rust_source};
use hbarrier::core::verify;
use hbarrier::prelude::*;

fn main() {
    // The paper's Fig. 10 case: 3 nodes, 22 processes, round-robin.
    let machine = MachineSpec::dual_quad_cluster(3);
    let mapping = RankMapping::RoundRobin;
    let profile = TopologyProfile::from_ground_truth_for(&machine, &mapping, 22);

    let tuned = tune_hybrid(&profile, &TunerConfig::default());

    println!("=== cluster tree (SSS, sparseness 35% of diameter) ===");
    print!("{}", tuned.tree.render());

    println!("\n=== greedy per-cluster choices ===");
    for c in &tuned.choices {
        println!(
            "depth {} | participants {:?} -> {} (score {:.2} us)",
            c.depth,
            c.participants,
            c.algorithm,
            c.score * 1e6
        );
    }

    println!("\n=== composed schedule ===");
    println!("{}", tuned.schedule);
    println!(
        "stages: {}, signals: {}, predicted cost: {:.1} us",
        tuned.schedule.len(),
        tuned.schedule.total_signals(),
        tuned.predicted_cost * 1e6
    );

    // Eq. 3 verification (the tuner already asserts this internally).
    assert!(verify::is_barrier(&tuned.schedule));
    println!(
        "Eq. 3 knowledge closure: all {}² entries non-zero — valid barrier",
        22
    );

    // Compare against forcing each single algorithm through the same
    // hierarchy (the ablation the DESIGN.md calls out).
    println!("\n=== ablation: forced single-algorithm hierarchies ===");
    for alg in hbarrier::core::algorithms::Algorithm::PAPER_SET {
        let forced = tune_hybrid(&profile, &TunerConfig::forced(alg));
        println!(
            "forced {:>14}: predicted {:.1} us",
            alg.to_string(),
            forced.predicted_cost * 1e6
        );
    }
    println!(
        "greedy hybrid        : predicted {:.1} us",
        tuned.predicted_cost * 1e6
    );

    // The generated Rust source (the paper emits C; both are available).
    let programs = compile_schedule(&tuned.schedule).expect("schedule compiles");
    let src = rust_source("hybrid_barrier_22", &programs).expect("valid identifier");
    println!(
        "\ngenerated Rust barrier: {} lines (rank 0's arm shown)\n",
        src.lines().count()
    );
    let mut in_arm = false;
    for line in src.lines() {
        if line.trim_start().starts_with("0 =>") {
            in_arm = true;
        }
        if in_arm {
            println!("  {line}");
            if line.trim() == "}" {
                break;
            }
        }
    }
}
