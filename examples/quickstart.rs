//! Quickstart: profile a (simulated) cluster, tune a hybrid barrier for
//! it, and compare it against the topology-neutral baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbarrier::core::algorithms::Algorithm;
use hbarrier::core::codegen::{c_source, compile_schedule};
use hbarrier::core::cost::{predict_barrier_cost, CostParams};
use hbarrier::prelude::*;
use hbarrier::simnet::barrier::measure_schedule;
use hbarrier::simnet::NoiseModel;

fn main() {
    // The paper's cluster A at half size: 4 nodes of dual quad-cores,
    // ranks placed round-robin like the paper's batch scheduler.
    let machine = MachineSpec::dual_quad_cluster(4);
    let mapping = RankMapping::RoundRobin;
    let p = machine.total_cores();
    println!("platform: {} ({p} cores)", machine.name);

    // 1. Topology profile. For brevity this uses the closed-form profile;
    //    `profile_cluster.rs` shows the full measured-benchmark route.
    let profile = TopologyProfile::from_ground_truth(&machine, &mapping);

    // 2. Tune a hybrid barrier with the paper's configuration
    //    (SSS sparseness 35 %, candidates {linear, dissemination, tree}).
    let tuned = tune_hybrid(&profile, &TunerConfig::default());
    assert!(
        tuned.schedule.is_barrier(),
        "composition is always verified"
    );
    println!(
        "tuned hybrid: {} stages, {} signals, root algorithm {}",
        tuned.schedule.len(),
        tuned.schedule.total_signals(),
        tuned
            .root_algorithm()
            .expect("multi-rank barrier has a root"),
    );

    // 3. Predict both the hybrid and the neutral tree baseline.
    let members: Vec<usize> = (0..p).collect();
    let neutral = Algorithm::Tree.full_schedule(p, &members);
    let params = CostParams::default();
    let pred_hybrid = predict_barrier_cost(&tuned.schedule, &profile.cost, &params, None);
    let pred_neutral = predict_barrier_cost(&neutral, &profile.cost, &params, None);
    println!(
        "predicted: hybrid {:.1} us vs neutral tree {:.1} us",
        pred_hybrid.barrier_cost * 1e6,
        pred_neutral.barrier_cost * 1e6
    );

    // 4. Measure both on the simulated cluster (with realistic noise).
    let cfg = SimConfig {
        machine,
        mapping,
        noise: NoiseModel::realistic(1),
    };
    let mut world = SimWorld::new(cfg, p);
    let meas_hybrid = measure_schedule(&mut world, &tuned.schedule, 25);
    let meas_neutral = measure_schedule(&mut world, &neutral, 25);
    println!(
        "measured:  hybrid {:.1} us vs neutral tree {:.1} us ({:.2}x)",
        meas_hybrid * 1e6,
        meas_neutral * 1e6,
        meas_neutral / meas_hybrid
    );

    // 5. Emit the hard-coded C barrier the paper's generator would write.
    let programs = compile_schedule(&tuned.schedule).expect("schedule compiles");
    let c = c_source("hybrid_barrier", &programs).expect("valid identifier");
    println!(
        "\ngenerated C barrier: {} lines (showing first 12)\n",
        c.lines().count()
    );
    for line in c.lines().take(12) {
        println!("  {line}");
    }
}
