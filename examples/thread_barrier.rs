//! Execute a generated barrier on real OS threads and validate it with
//! the paper's staggered-delay check (§VI), then race it against
//! classical shared-memory barriers.
//!
//! ```text
//! cargo run --release --example thread_barrier
//! ```

use hbarrier::core::algorithms::Algorithm;
use hbarrier::core::codegen::compile_schedule;
use hbarrier::prelude::*;
use hbarrier::threadrun::baselines::{
    time_thread_barrier, CentralCounterBarrier, StdSyncBarrier, ThreadBarrier,
};
use hbarrier::threadrun::executor::ThreadExecutor;
use hbarrier::threadrun::harness;
use std::time::Duration;

fn main() {
    // Stay modest: oversubscribed spin barriers measure the OS scheduler,
    // not the barrier.
    let p = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(2);
    println!("running on {p} threads");

    // Tune a hybrid for a machine shaped like this host (one node, one
    // socket level — the tuner degenerates gracefully).
    let machine = MachineSpec::new(1, 1, p);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
    let tuned = tune_hybrid(&profile, &TunerConfig::default());
    println!(
        "tuned schedule: {} stages, root algorithm {:?}",
        tuned.schedule.len(),
        tuned.root_algorithm()
    );

    // §VI staggered-delay validation on real threads.
    let delay = Duration::from_millis(20);
    let (ok, _) = harness::staggered_delay_check(&tuned.schedule, delay);
    println!(
        "staggered-delay check ({delay:?} per rank): {}",
        if ok { "PASSED" } else { "FAILED" }
    );
    assert!(ok);

    // Time the generated schedules against the baselines.
    let iters = 200;
    let members: Vec<usize> = (0..p).collect();
    println!("\nmean per-barrier time over {iters} iterations:");
    for alg in Algorithm::PAPER_SET {
        let sched = alg.full_schedule(p, &members);
        let mut ex = ThreadExecutor::new(compile_schedule(&sched).expect("schedule compiles"));
        println!("  {:>18}: {:?}", alg.to_string(), ex.time_barrier(iters));
    }
    let mut ex = ThreadExecutor::new(compile_schedule(&tuned.schedule).expect("schedule compiles"));
    println!("  {:>18}: {:?}", "tuned hybrid", ex.time_barrier(iters));

    let central = CentralCounterBarrier::new(p);
    println!(
        "  {:>18}: {:?}",
        central.name(),
        time_thread_barrier(&central, p, iters)
    );
    let std_b = StdSyncBarrier::new(p);
    println!(
        "  {:>18}: {:?}",
        std_b.name(),
        time_thread_barrier(&std_b, p, iters)
    );
}
