//! Full profiling workflow (§IV of the paper): run the pairwise
//! benchmarks on the simulated cluster, extract the O/L matrices by
//! regression, store the profile to disk, reload it, and render the
//! Fig. 9 heat map.
//!
//! ```text
//! cargo run --release --example profile_cluster
//! ```

use hbarrier::prelude::*;
use hbarrier::simnet::profiling::{measure_profile, ProfilingConfig};
use hbarrier::simnet::NoiseModel;
use hbarrier::topo::heatmap::{block_means, render_labelled};
use hbarrier::topo::machine::LinkClass;
use hbarrier::topo::metric::DistanceMetric;

fn main() {
    // One dual quad-core node under block mapping: ranks 0–3 share socket
    // 0, ranks 4–7 share socket 1 — the exact Fig. 9 configuration.
    let machine = MachineSpec::dual_quad_cluster(1);
    let mapping = RankMapping::Block;

    // Run the paper's benchmark schedule: 21 payload sizes × 25 reps for
    // each O_ij, 32 burst lengths × 25 reps for each L_ij, plus the
    // transmission-free O_ii calls. The noise model injects the jitter
    // and preemption spikes real profiling runs suffer.
    let profile = measure_profile(
        &machine,
        &mapping,
        8,
        NoiseModel::realistic(7),
        &ProfilingConfig::default(),
    );

    // Store and reload — the paper's decoupling of profiling from tuning.
    let dir = std::env::temp_dir().join("hbarrier_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("dual_quad_node.profile.json");
    profile.save(&path).expect("save profile");
    let reloaded = TopologyProfile::load(&path).expect("load profile");
    println!("profile stored and reloaded: {}", path.display());
    assert_eq!(reloaded.p, 8);

    // Fig. 9: the L matrix of the node, with its two darker on-chip
    // blocks.
    println!();
    println!(
        "{}",
        render_labelled(&reloaded.cost.l, "L Matrix Heat Map, 2x4 cores")
    );
    let blocks = block_means(&reloaded.cost.l, 4);
    println!(
        "on-chip mean L = {:.2e} s, off-chip mean L = {:.2e} s, ratio = {:.2} (paper: ~4)",
        blocks.on,
        blocks.off,
        blocks.ratio()
    );

    // Compare measured estimates against what the benchmarks target.
    let gt = &machine.ground_truth;
    println!("\nmeasured vs ideal (noise-free) parameters:");
    for (label, class, pair) in [
        ("same-socket", LinkClass::SameSocket, (0usize, 1usize)),
        ("cross-socket", LinkClass::CrossSocket, (0, 4)),
    ] {
        println!(
            "  O {label}: measured {:.3e} s, ideal {:.3e} s",
            reloaded.cost.o[pair],
            gt.effective_o(class)
        );
        println!(
            "  L {label}: measured {:.3e} s, ideal {:.3e} s",
            reloaded.cost.l[pair],
            gt.effective_l(class)
        );
    }

    // The symmetrized profile is a metric space — the property SSS
    // clustering requires (§VII-A).
    let metric = DistanceMetric::from_costs(&reloaded.cost);
    let violations = metric.validate(0.10);
    println!(
        "\nmetric-space check (10% tolerance): {} violations, diameter {:.2e} s",
        violations.len(),
        metric.diameter()
    );
}
