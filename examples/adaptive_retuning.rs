//! Dynamic re-tuning under changing conditions (§VIII future work).
//!
//! A tuned barrier is deployed on a cluster; background load then
//! congests the inter-node links. The [`AdaptiveBarrier`] controller
//! notices the degradation from observed durations, prices a re-tune
//! against the expected number of remaining synchronizations, and
//! switches only when the saving amortizes the switching overhead.
//!
//! ```text
//! cargo run --release --example adaptive_retuning
//! ```

use hbarrier::core::adaptive::{AdaptiveBarrier, AdaptiveConfig};
use hbarrier::prelude::*;
use hbarrier::simnet::barrier::measure_schedule;
use hbarrier::simnet::NoiseModel;
use hbarrier::topo::library::ProfileLibrary;

/// Inter-node links slowed by a congestion factor (unrelated traffic).
fn congested_machine(base: &MachineSpec, factor: f64) -> MachineSpec {
    let mut m = base.clone();
    let c = &mut m.ground_truth.inter_node;
    c.wire_ns = (c.wire_ns as f64 * factor) as u64;
    c.nic_tx_ns = (c.nic_tx_ns as f64 * factor) as u64;
    c.nic_rx_ns = (c.nic_rx_ns as f64 * factor) as u64;
    m
}

fn main() {
    let machine = MachineSpec::dual_quad_cluster(4);
    let mapping = RankMapping::RoundRobin;
    let p = machine.total_cores();

    // Profiles live in an indexed on-disk library (§VIII), so run-time
    // code never re-measures what is already known.
    let libdir = std::env::temp_dir().join("hbarrier_profile_library");
    let mut library = ProfileLibrary::open(&libdir).expect("open profile library");
    let profile = match library
        .lookup(&machine, &mapping, p)
        .expect("library lookup")
    {
        Some(prof) => {
            println!("profile found in library ({} entries)", library.len());
            prof
        }
        None => {
            println!("profile not in library; deriving and storing it");
            let prof = TopologyProfile::from_ground_truth(&machine, &mapping);
            library.store(&prof).expect("store profile");
            prof
        }
    };

    // Deploy.
    let mut controller = AdaptiveBarrier::new(
        &profile.cost,
        &(0..p).collect::<Vec<_>>(),
        TunerConfig::default(),
        AdaptiveConfig {
            window: 8,
            degradation_threshold: 1.5,
            retune_overhead: 0.1,
        },
    );
    println!(
        "deployed hybrid: predicted {:.1} us, root {:?}",
        controller.current().predicted_cost * 1e6,
        controller.current().root_algorithm()
    );

    // Phase 1: normal conditions. Observations track the prediction.
    let mut world = SimWorld::new(
        SimConfig {
            machine: machine.clone(),
            mapping: mapping.clone(),
            noise: NoiseModel::realistic(5),
        },
        p,
    );
    for _ in 0..8 {
        let t = measure_schedule(&mut world, controller.schedule(), 5);
        controller.observe(t);
    }
    println!(
        "phase 1 (idle cluster): mean observed {:.1} us, degraded = {}",
        controller.mean_observed().expect("observations") * 1e6,
        controller.is_degraded()
    );

    // Phase 2: heavy background traffic multiplies inter-node costs 6x.
    let busy = congested_machine(&machine, 6.0);
    let mut busy_world = SimWorld::new(
        SimConfig {
            machine: busy.clone(),
            mapping: mapping.clone(),
            noise: NoiseModel::realistic(6),
        },
        p,
    );
    for _ in 0..8 {
        let t = measure_schedule(&mut busy_world, controller.schedule(), 5);
        controller.observe(t);
    }
    println!(
        "phase 2 (congested): mean observed {:.1} us, degraded = {}",
        controller.mean_observed().expect("observations") * 1e6,
        controller.is_degraded()
    );

    // Degradation triggers re-profiling (here: the congested closed form)
    // and a profitability decision.
    let updated = TopologyProfile::from_ground_truth(&busy, &mapping);
    for expected in [100.0, 1e7] {
        let d = controller.evaluate_retune(&updated.cost, expected);
        println!(
            "expected {expected:>9.0} future barriers: candidate {:.1} us, net saving {:+.3} s -> {}",
            d.candidate_cost * 1e6,
            d.projected_net_saving,
            if d.retune { "RETUNE" } else { "keep current" }
        );
    }
    let decision = controller.retune_if_profitable(&updated.cost, 1e7);
    assert!(decision.retune);
    println!(
        "switched (retune #{}) — new schedule: {} stages, predicted {:.1} us under congestion",
        controller.retune_count,
        controller.schedule().len(),
        controller.current().predicted_cost * 1e6
    );
}
