//! Offline stand-in for `serde_json`.
//!
//! Bridges the local `serde` shim's [`Value`] data model to JSON text.
//! Floats are printed with Rust's shortest-round-trip formatting (the
//! behaviour upstream's `float_roundtrip` feature guarantees), so
//! serialize → parse returns bit-identical `f64`s.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out.push('\n');
    Ok(out)
}

/// Parses a JSON document into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after JSON document"));
    }
    T::from_value(&value).map_err(Error::new)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            out,
            indent,
            depth,
            ('[', ']'),
            |item, out, ind, d| write_value(item, out, ind, d),
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(key, val), out, ind, d| {
                write_string(key, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(val, out, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(T, &mut String, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

/// Shortest representation that round-trips: Rust's `{:?}` for `f64`.
/// JSON has no non-finite literals, so those become `null` (as upstream).
fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.fail("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair: expect a low surrogate next.
                                self.eat_literal("\\u")?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.fail("invalid \\u escape"))?);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.fail(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -4.9e-14, 0.0, 1.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<f64>("1.0.0").is_err());
    }
}
