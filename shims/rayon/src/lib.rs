//! Offline stand-in for `rayon`.
//!
//! The workspace uses rayon as a deterministic data-parallel map: every
//! call site is `par_iter()/into_par_iter()` followed by `map(...)` and an
//! order-preserving `collect()`/`sum()`. This shim reproduces exactly that
//! contract on `std::thread::scope`: inputs are split into contiguous
//! chunks, one OS thread per chunk, and outputs land in input order, so
//! results are bit-identical to the sequential loop regardless of thread
//! count or scheduling.
//!
//! `RAYON_NUM_THREADS` is honoured (like upstream): `1` forces the
//! sequential path.

use std::sync::OnceLock;

/// Number of worker threads the pool would use.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// A not-yet-mapped parallel iterator holding its items by value.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iterator; consumed by `collect`/`sum`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Applies `f` to every item in parallel, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items behind the iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Accepted for API compatibility; chunking is already contiguous.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> ParMap<I, F> {
    /// Gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_ordered(self.items, &self.f).into_iter().collect()
    }

    /// Gathers results in input order, scheduling items dynamically with
    /// work stealing instead of static contiguous chunks. Same output as
    /// [`Self::collect`] (order-stable, bit-identical results), different
    /// wall clock: use when item costs are wildly uneven — e.g. one class
    /// representative growing its repetitions 8× while its neighbours
    /// finish instantly — where static chunking strands whole chunks
    /// behind one slow item.
    pub fn collect_stealing<C: FromIterator<R>>(self) -> C {
        par_map_ordered_stealing(self.items, &self.f)
            .into_iter()
            .collect()
    }

    /// Sums results; addition order equals input order.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        par_map_ordered(self.items, &self.f).into_iter().sum()
    }
}

/// Work-stealing fork-join map with stable output order.
///
/// Each worker owns a contiguous index interval and pops from its front;
/// an idle worker steals the back half of the largest remaining interval
/// (classic interval stealing — cache-friendly for the victim, balanced
/// for the thief). Intervals are tiny `Mutex<(start, end)>`s: a lock is
/// taken once per item pop and once per steal, which is noise next to the
/// millisecond-scale items this shim schedules.
fn par_map_ordered_stealing<I: Send, R: Send, F: Fn(I) -> R + Sync>(
    items: Vec<I>,
    f: &F,
) -> Vec<R> {
    use std::cell::UnsafeCell;
    use std::sync::Mutex;

    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    /// Slot arrays shared across workers. Safety: interval ownership
    /// guarantees each index is popped (and therefore accessed) by exactly
    /// one worker, and the scope join orders all writes before the reads
    /// below.
    struct Slots<'a, T>(&'a [UnsafeCell<T>]);
    unsafe impl<T: Send> Sync for Slots<'_, T> {}

    let inputs: Vec<UnsafeCell<Option<I>>> = items
        .into_iter()
        .map(|v| UnsafeCell::new(Some(v)))
        .collect();
    let mut outputs: Vec<UnsafeCell<Option<R>>> = Vec::with_capacity(n);
    outputs.resize_with(n, || UnsafeCell::new(None));
    let in_slots = Slots(&inputs);
    let out_slots = Slots(&outputs);

    let chunk = n.div_ceil(threads);
    let intervals: Vec<Mutex<(usize, usize)>> = (0..threads)
        .map(|t| Mutex::new(((t * chunk).min(n), ((t + 1) * chunk).min(n))))
        .collect();
    let intervals = &intervals;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let in_slots = &in_slots;
            let out_slots = &out_slots;
            scope.spawn(move || loop {
                // Pop the front of our own interval.
                let mine = {
                    let mut iv = intervals[t].lock().expect("interval lock");
                    if iv.0 < iv.1 {
                        let i = iv.0;
                        iv.0 += 1;
                        Some(i)
                    } else {
                        None
                    }
                };
                if let Some(i) = mine {
                    // Safety: index `i` was popped exactly once (see Slots).
                    unsafe {
                        let item = (*in_slots.0[i].get()).take().expect("popped twice");
                        *out_slots.0[i].get() = Some(f(item));
                    }
                    continue;
                }
                // Steal the back half of the largest other interval.
                let victim = (0..threads)
                    .filter(|&v| v != t)
                    .map(|v| {
                        let iv = intervals[v].lock().expect("interval lock");
                        (v, iv.1.saturating_sub(iv.0))
                    })
                    .max_by_key(|&(_, len)| len);
                match victim {
                    Some((v, len)) if len > 0 => {
                        let stolen = {
                            let mut iv = intervals[v].lock().expect("interval lock");
                            let avail = iv.1.saturating_sub(iv.0);
                            if avail == 0 {
                                None
                            } else {
                                let take = avail.div_ceil(2);
                                let range = (iv.1 - take, iv.1);
                                iv.1 -= take;
                                Some(range)
                            }
                        };
                        if let Some(range) = stolen {
                            *intervals[t].lock().expect("interval lock") = range;
                        }
                    }
                    _ => break, // nothing anywhere: all work popped
                }
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker left a hole"))
        .collect()
}

/// The core primitive: chunked fork-join map with stable output order.
fn par_map_ordered<I: Send, R: Send, F: Fn(I) -> R + Sync>(items: Vec<I>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut inputs: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut outputs: Vec<Option<R>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (ins, outs) in inputs.chunks_mut(chunk).zip(outputs.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot_in, slot_out) in ins.iter_mut().zip(outs.iter_mut()) {
                    *slot_out = Some(f(slot_in.take().expect("input consumed twice")));
                }
            });
        }
    });
    outputs
        .into_iter()
        .map(|slot| slot.expect("worker left a hole"))
        .collect()
}

/// `into_par_iter()` for owned collections.
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` for borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Element type produced by the iterator (a shared reference).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn sum_matches_sequential() {
        let total: u64 = (0..257usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(total, 256 * 257 / 2);
    }

    #[test]
    fn stealing_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect_stealing();
        assert_eq!(squares, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_balances_skewed_costs() {
        // One pathological item at the front of the range: static chunking
        // would strand the first chunk behind it; stealing must still
        // return the right answer (timing is not asserted, only totals).
        let out: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                let spins = if i == 0 { 200_000 } else { 200 };
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                acc ^ i as u64
            })
            .collect_stealing();
        assert_eq!(out.len(), 64);
        let seq: Vec<u64> = (0..64usize)
            .map(|i| {
                let spins = if i == 0 { 200_000 } else { 200 };
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                acc ^ i as u64
            })
            .collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn stealing_handles_tiny_inputs() {
        let one: Vec<usize> = vec![7usize]
            .into_par_iter()
            .map(|i| i + 1)
            .collect_stealing();
        assert_eq!(one, vec![8]);
        let empty: Vec<usize> = Vec::<usize>::new()
            .into_par_iter()
            .map(|i| i)
            .collect_stealing();
        assert!(empty.is_empty());
    }
}
