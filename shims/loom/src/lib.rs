//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no crates registry, so this shim vendors the
//! slice of loom's API the workspace uses (`model`, `thread`,
//! `sync::atomic`, `hint`) on top of a small model checker of its own:
//!
//! * Executions are serialized: real OS threads run one at a time, passing
//!   a token at every *schedule point* (atomic op, yield, spawn, join).
//!   Because exactly one thread runs between points, every execution is a
//!   sequentially consistent interleaving — this checker explores thread
//!   interleavings exhaustively but, unlike real loom, does **not** model
//!   C++11 weak-memory reorderings. Orderings are accepted and upgraded
//!   to `SeqCst`.
//! * The scheduler records the choice made at every point and backtracks
//!   depth-first, bounded by a *preemption budget* (CHESS-style): running
//!   the current thread on, or switching when it is blocked, is free;
//!   switching away from a runnable thread costs one preemption. Most
//!   concurrency bugs are reachable within two preemptions, which keeps
//!   the search tractable while staying systematic. Override with
//!   `LOOM_MAX_PREEMPTIONS`.
//! * `thread::yield_now` / `hint::spin_loop` park the caller until some
//!   other thread performs a write, so spin loops explore one re-check
//!   per write instead of unboundedly many. If every live thread is
//!   parked and no writer can make progress, the model reports deadlock.
//! * A panic on any model thread (assertion failure, detected deadlock)
//!   aborts the execution and is re-raised from [`model`] with the
//!   exploration count.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};

/// Default preemption budget per execution (CHESS default).
const DEFAULT_PREEMPTION_BOUND: usize = 2;
/// Hard cap on explored executions, as a runaway backstop.
const DEFAULT_EXECUTION_BOUND: usize = 500_000;
/// Consecutive forced continuations of a parked thread (no write in
/// between) before the scheduler declares the execution deadlocked.
const FORCED_LIMIT: usize = 256;

/// Panic payload used to tear down threads of an aborted execution.
struct AbortToken;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for `write_epoch` to advance past the stored epoch.
    Parked(u64),
    Finished,
}

/// One scheduling decision: which thread got the token, and which other
/// enabled threads remain to be tried on later executions.
struct Choice {
    chosen: usize,
    /// `(thread, costs_a_preemption)` alternatives not yet explored.
    alts: Vec<(usize, bool)>,
    /// Preemptions spent on the path before this point.
    preemptions_before: usize,
}

struct State {
    threads: Vec<Status>,
    current: usize,
    live: usize,
    write_epoch: u64,
    /// Replay prefix plus the choices appended by this execution.
    path: Vec<Choice>,
    /// Choices consumed so far (index into `path`).
    pos: usize,
    preemptions: usize,
    /// Consecutive forced continuations since the last write.
    forced: usize,
    abort: bool,
    failure: Option<String>,
}

struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Sched>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Sched {
    fn new(replay: Vec<Choice>) -> Self {
        Sched {
            state: Mutex::new(State {
                threads: vec![Status::Runnable],
                current: 0,
                live: 1,
                write_epoch: 0,
                path: replay,
                pos: 0,
                preemptions: 0,
                forced: 0,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the next token holder. Called with the lock held, by the
    /// thread that just reached a schedule point (or just finished).
    fn pick_next(&self, st: &mut State, me: usize) {
        for t in st.threads.iter_mut() {
            if let Status::Parked(epoch) = *t {
                if epoch < st.write_epoch {
                    *t = Status::Runnable;
                }
            }
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.live == 0 {
                return;
            }
            // Everyone live is parked. Let the most recent parker re-check
            // (a bare yield with nothing to yield to must not deadlock),
            // but only finitely often without an intervening write.
            if matches!(st.threads[me], Status::Parked(_)) && st.forced < FORCED_LIMIT {
                st.forced += 1;
                st.threads[me] = Status::Runnable;
                if st.pos >= st.path.len() {
                    st.path.push(Choice {
                        chosen: me,
                        alts: Vec::new(),
                        preemptions_before: st.preemptions,
                    });
                }
                st.pos += 1;
                st.current = me;
                return;
            }
            st.failure.get_or_insert_with(|| {
                format!(
                    "deadlock: {} live thread(s) all blocked with no writer to wake them",
                    st.live
                )
            });
            st.abort = true;
            return;
        }
        let me_enabled = enabled.contains(&me);
        let chosen = if st.pos < st.path.len() {
            let c = st.path[st.pos].chosen;
            if !enabled.contains(&c) {
                st.failure
                    .get_or_insert_with(|| "replay diverged: the model is nondeterministic (avoid time, I/O and ambient randomness inside model())".to_string());
                st.abort = true;
                return;
            }
            c
        } else {
            let default = if me_enabled { me } else { enabled[0] };
            let alts = enabled
                .iter()
                .copied()
                .filter(|&t| t != default)
                .map(|t| (t, me_enabled && t != me))
                .collect();
            st.path.push(Choice {
                chosen: default,
                alts,
                preemptions_before: st.preemptions,
            });
            default
        };
        if me_enabled && chosen != me {
            st.preemptions += 1;
        }
        st.pos += 1;
        st.current = chosen;
    }

    /// A schedule point: record `me`'s new status, pick the next thread,
    /// and block until the token comes back (or the execution aborts).
    fn schedule(&self, me: usize, status: Status) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.threads[me] = status;
        if !st.abort {
            self.pick_next(&mut st, me);
        }
        self.cv.notify_all();
        while !st.abort && st.current != me {
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[me] = Status::Runnable;
    }

    /// Blocks a freshly spawned thread until it first receives the token.
    fn wait_for_token(&self, me: usize) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        while !st.abort && st.current != me {
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    }

    /// Marks a write as visible: parked spinners become eligible again at
    /// the next schedule point.
    fn bump_epoch(&self) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.write_epoch += 1;
        st.forced = 0;
    }

    fn current_epoch(&self) -> u64 {
        self.state.lock().expect("scheduler poisoned").write_epoch
    }

    fn finish(&self, me: usize, failure: Option<String>) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.threads[me] = Status::Finished;
        st.live -= 1;
        st.write_epoch += 1; // joiners parked on this thread wake up
        st.forced = 0;
        if let Some(msg) = failure {
            st.failure.get_or_insert(msg);
            st.abort = true;
        }
        if st.live > 0 && !st.abort {
            self.pick_next(&mut st, me);
        }
        self.cv.notify_all();
    }

    fn wait_quiescent(&self) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        while st.live > 0 {
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
    }
}

/// Suppress the default panic hook for [`AbortToken`] teardown panics so
/// aborted executions do not spam stderr; real panics still print.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

fn payload_message(payload: &(dyn Any + Send)) -> Option<String> {
    if payload.downcast_ref::<AbortToken>().is_some() {
        return None;
    }
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("thread panicked with a non-string payload".to_string())
}

fn run_thread<T>(
    sched: Arc<Sched>,
    me: usize,
    f: impl FnOnce() -> T,
) -> Result<T, Box<dyn Any + Send>> {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), me)));
    sched.wait_for_token(me);
    let result = catch_unwind(AssertUnwindSafe(f));
    let failure = result.as_ref().err().and_then(|p| payload_message(&**p));
    sched.finish(me, failure);
    CTX.with(|c| *c.borrow_mut() = None);
    result
}

fn env_bound(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pops path suffixes until a choice with an in-budget untried
/// alternative is found, promotes it, and returns true; false when the
/// search space is exhausted.
fn backtrack(path: &mut Vec<Choice>, bound: usize) -> bool {
    while let Some(mut c) = path.pop() {
        while let Some((tid, preemptive)) = c.alts.pop() {
            if c.preemptions_before + usize::from(preemptive) <= bound {
                c.chosen = tid;
                path.push(c);
                return true;
            }
        }
    }
    false
}

/// Explores interleavings of `f` exhaustively up to the preemption bound,
/// panicking with the first failure (assertion or deadlock) found.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let bound = env_bound("LOOM_MAX_PREEMPTIONS", DEFAULT_PREEMPTION_BOUND);
    let max_executions = env_bound("LOOM_MAX_EXECUTIONS", DEFAULT_EXECUTION_BOUND);
    let f = Arc::new(f);
    let mut replay: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let sched = Arc::new(Sched::new(replay));
        let root = {
            let sched = Arc::clone(&sched);
            let f = Arc::clone(&f);
            std::thread::spawn(move || run_thread(sched, 0, move || f()))
        };
        sched.wait_quiescent();
        let _ = root.join();
        let (mut path, failure) = {
            let mut st = sched.state.lock().expect("scheduler poisoned");
            (std::mem::take(&mut st.path), st.failure.take())
        };
        if let Some(msg) = failure {
            panic!("loom model failed (execution {executions}): {msg}");
        }
        if !backtrack(&mut path, bound) {
            break;
        }
        if executions >= max_executions {
            eprintln!("loom: exploration truncated at {max_executions} executions");
            break;
        }
        replay = path;
    }
}

pub mod thread {
    //! Model-aware threads. Outside [`model`](super::model) these fall
    //! back to `std::thread`.

    use super::{ctx, run_thread, Sched, Status};
    use std::sync::Arc;

    /// Handle to a model thread (or a plain OS thread outside a model).
    pub struct JoinHandle<T> {
        target: Target<T>,
    }

    enum Target<T> {
        Model {
            sched: Arc<Sched>,
            tid: usize,
            inner: std::thread::JoinHandle<std::thread::Result<T>>,
        },
        Os(std::thread::JoinHandle<T>),
    }

    /// Spawns a thread participating in the current model execution.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some((sched, me)) => {
                let tid = {
                    let mut st = sched.state.lock().expect("scheduler poisoned");
                    st.threads.push(Status::Runnable);
                    st.live += 1;
                    st.threads.len() - 1
                };
                let inner = {
                    let sched = Arc::clone(&sched);
                    std::thread::spawn(move || run_thread(sched, tid, f))
                };
                // The child is now eligible: a schedule point.
                sched.schedule(me, Status::Runnable);
                JoinHandle {
                    target: Target::Model { sched, tid, inner },
                }
            }
            None => JoinHandle {
                target: Target::Os(std::thread::spawn(f)),
            },
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            match self.target {
                Target::Model { sched, tid, inner } => {
                    let (_, me) = ctx().expect("join outside the model");
                    loop {
                        let (done, epoch) = {
                            let st = sched.state.lock().expect("scheduler poisoned");
                            (st.threads[tid] == Status::Finished, st.write_epoch)
                        };
                        if done {
                            break;
                        }
                        sched.schedule(me, Status::Parked(epoch));
                    }
                    inner.join().expect("model thread wrapper panicked")
                }
                Target::Os(h) => h.join(),
            }
        }
    }

    /// Parks the caller until another thread performs a write (outside a
    /// model: a plain OS yield).
    pub fn yield_now() {
        match ctx() {
            Some((sched, me)) => {
                let epoch = sched.current_epoch();
                sched.schedule(me, Status::Parked(epoch));
            }
            None => std::thread::yield_now(),
        }
    }
}

pub mod hint {
    /// Modeled identically to [`thread::yield_now`](super::thread::yield_now):
    /// a spinner makes no progress until someone writes.
    pub fn spin_loop() {
        match super::ctx() {
            Some((sched, me)) => {
                let epoch = sched.current_epoch();
                sched.schedule(me, super::Status::Parked(epoch));
            }
            None => std::hint::spin_loop(),
        }
    }
}

pub mod sync {
    pub use std::sync::Arc;

    pub mod atomic {
        //! Atomics whose every operation is a schedule point. Orderings
        //! are accepted for API compatibility and upgraded to `SeqCst`
        //! (the checker serializes operations anyway).

        pub use std::sync::atomic::Ordering;

        use super::super::{ctx, Status};

        fn pre_op() {
            if let Some((sched, me)) = ctx() {
                sched.schedule(me, Status::Runnable);
            }
        }

        fn post_write() {
            if let Some((sched, _)) = ctx() {
                sched.bump_epoch();
            }
        }

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Model-checked atomic integer.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Creates a new atomic with the given initial value.
                    pub fn new(v: $int) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Loads the value (a schedule point).
                    pub fn load(&self, _order: Ordering) -> $int {
                        pre_op();
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Stores a value (a schedule point; wakes spinners).
                    pub fn store(&self, v: $int, _order: Ordering) {
                        pre_op();
                        self.inner.store(v, Ordering::SeqCst);
                        post_write();
                    }

                    /// Adds to the value, returning the previous value
                    /// (a schedule point; wakes spinners).
                    pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                        pre_op();
                        let prev = self.inner.fetch_add(v, Ordering::SeqCst);
                        post_write();
                        prev
                    }

                    /// Compare-and-exchange (a schedule point; wakes
                    /// spinners on success).
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$int, $int> {
                        pre_op();
                        let r = self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        if r.is_ok() {
                            post_write();
                        }
                        r
                    }
                }
            };
        }

        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        /// Model-checked atomic boolean.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates a new atomic with the given initial value.
            pub fn new(v: bool) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Loads the value (a schedule point).
            pub fn load(&self, _order: Ordering) -> bool {
                pre_op();
                self.inner.load(Ordering::SeqCst)
            }

            /// Stores a value (a schedule point; wakes spinners).
            pub fn store(&self, v: bool, _order: Ordering) {
                pre_op();
                self.inner.store(v, Ordering::SeqCst);
                post_write();
            }

            /// Stores a value, returning the previous value (a schedule
            /// point; wakes spinners).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                pre_op();
                let prev = self.inner.swap(v, Ordering::SeqCst);
                post_write();
                prev
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::Arc;
    use super::thread;

    #[test]
    fn atomic_increments_from_two_threads_always_sum() {
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    #[should_panic(expected = "loom model failed")]
    fn load_store_race_is_found() {
        // The classic lost update: both threads read 0, both write 1.
        // An interleaving where the final value is 1 must be discovered.
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }

    #[test]
    fn spin_wait_on_flag_terminates() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let data = Arc::new(AtomicUsize::new(0));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::SeqCst);
                f2.store(true, Ordering::SeqCst);
            });
            while !flag.load(Ordering::SeqCst) {
                thread::yield_now();
            }
            // Publication: flag implies data under SC.
            assert_eq!(data.load(Ordering::SeqCst), 42);
            t.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn spinning_on_a_flag_nobody_sets_deadlocks() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                while !f2.load(Ordering::SeqCst) {
                    thread::yield_now();
                }
            });
            t.join().unwrap();
        });
    }

    #[test]
    fn bare_yield_without_peers_is_a_no_op() {
        super::model(|| {
            thread::yield_now();
            thread::yield_now();
        });
    }

    #[test]
    fn join_observes_child_effects() {
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || c2.fetch_add(5, Ordering::SeqCst));
            let prev = t.join().unwrap();
            assert_eq!(prev, 0);
            assert_eq!(c.load(Ordering::SeqCst), 5);
        });
    }

    #[test]
    fn three_threads_interleave_without_false_alarms() {
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            c.fetch_add(1, Ordering::SeqCst);
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 3);
        });
    }
}
