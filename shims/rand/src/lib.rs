//! Offline stand-in for the `rand` crate.
//!
//! Only the surface the workspace uses is provided: a seedable small RNG
//! ([`rngs::SmallRng`], implemented as xoshiro256++ with splitmix64 seed
//! expansion, the same generator family upstream uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random`] for the primitive
//! types the simulator draws.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seeds.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed via splitmix64,
    /// so nearby seeds give uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG.
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Convenience sampling, mirroring `rand::Rng::random`.
pub trait RngExt: RngCore {
    /// Draws one uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit mantissa construction.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for simulation noise.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // An all-zero state is the one fixed point of xoshiro; the
            // splitmix expansion cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_vary() {
        let mut rng = SmallRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..1000).map(|_| rng.random::<f64>()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }
}
