//! Offline stand-in for `serde_derive`.
//!
//! With no crates registry available, `syn`/`quote` cannot be pulled in,
//! so these derives parse the item declaration directly from the
//! `proc_macro` token stream. Supported shapes — exactly what the
//! workspace declares — are structs with named fields (optionally with
//! unbounded type parameters), enums with unit variants, newtype/tuple
//! variants, and struct variants. The generated impls target the `Value`
//! data model of the local `serde` shim and use serde's externally-tagged
//! enum layout so JSON output matches upstream conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

enum Body {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these named fields.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive emitted invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive emitted invalid Rust")
}

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tok: Option<&TokenTree>, ch: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Advances past `#[...]` attributes (doc comments included) and any
/// `pub`/`pub(...)` visibility, returning the new cursor.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if is_punct(toks.get(i), '#') {
            i += 2; // the `#` and the bracketed group
        } else if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            return i;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = ident_of(&toks[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("expected the item name");
    i += 1;

    let mut generics = Vec::new();
    if is_punct(toks.get(i), '<') {
        i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ':' => {
                    panic!("serde shim derive: bounded generics are not supported on {name}")
                }
                TokenTree::Ident(id) if depth == 1 => generics.push(id.to_string()),
                _ => {}
            }
            i += 1;
        }
    }

    let body_group = loop {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple structs are not supported ({name})")
            }
            _ => i += 1,
        }
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group)),
        "enum" => Body::Enum(parse_variants(body_group)),
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        generics,
        body,
    }
}

/// Parses `name: Type, ...` field lists; types are skipped token-wise with
/// angle-bracket depth tracking (generated code never needs them — field
/// types are inferred at the use site).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let field = ident_of(&toks[i]).expect("expected a field name");
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "expected `:` after field `{field}`"
        );
        i += 1;
        let mut depth = 0isize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected a variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Counts comma-separated items at angle-bracket depth zero.
fn count_top_level_items(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0isize;
    let mut trailing_comma = false;
    for tok in &toks {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// `impl<T: ::serde::Serialize> ... for Name<T>` header pieces.
fn impl_pieces(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let decl = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        (
            format!("<{decl}>"),
            format!("<{}>", item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_pieces(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
             ::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds = (0..*n)
                .map(|k| format!("__f{k}"))
                .collect::<Vec<_>>()
                .join(", ");
            let elems = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Array(::std::vec![{elems}]))]),"
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Object(::std::vec![{pairs}]))]),"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_pieces(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__field(__value, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("::std::result::Result::Ok({name} {{\n{inits}\n}})")
        }
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
        })
        .collect::<Vec<_>>()
        .join("\n");
    let tagged_arms = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| deserialize_tagged_arm(name, v))
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::std::format!(\n\
                     \"unknown unit variant `{{__other}}` for {name}\")),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     __other => ::std::result::Result::Err(::std::format!(\n\
                         \"unknown variant `{{__other}}` for {name}\")),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::std::format!(\n\
                 \"invalid encoding for enum {name}: {{__other:?}}\")),\n\
         }}"
    )
}

fn deserialize_tagged_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants use the string arm"),
        VariantKind::Tuple(1) => format!(
            "\"{vname}\" => ::std::result::Result::Ok(\
             {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
        ),
        VariantKind::Tuple(n) => {
            let elems = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "\"{vname}\" => {{\n\
                     let __items = __inner.as_array().ok_or_else(|| \
                         ::std::string::String::from(\
                         \"expected an array for {name}::{vname}\"))?;\n\
                     if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::std::format!(\n\
                             \"expected {n} elements for {name}::{vname}, found {{}}\",\n\
                             __items.len()));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                 }}"
            )
        }
        VariantKind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__field(__inner, \"{f}\", \"{name}::{vname}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}}),")
        }
    }
}
