//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`BenchmarkId`] —
//! with a simple calibrated wall-clock measurement: each sample runs
//! enough iterations to cover a target duration, and the median ns/iter
//! over all samples is printed. Set `HBAR_BENCH_SAMPLE_MS` /
//! `HBAR_BENCH_MAX_SAMPLES` to trade accuracy for speed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&id.to_string(), 20, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per benchmark).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_sample: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Measures `f`, running it enough times per sample to cover the
    /// target sample duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: double the per-sample iteration count until one
        // sample costs at least the target duration.
        let mut iters = 1u64;
        loop {
            let elapsed = time_iters(&mut f, iters);
            if elapsed >= self.target_sample || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                self.samples.push(elapsed);
                break;
            }
            iters *= 2;
        }
        while self.samples.len() < self.max_samples {
            self.samples.push(time_iters(&mut f, self.iters_per_sample));
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        ns[ns.len() / 2]
    }
}

fn time_iters<R, F: FnMut() -> R>(f: &mut F, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        target_sample: Duration::from_millis(env_usize("HBAR_BENCH_SAMPLE_MS", 10) as u64),
        max_samples: sample_size.min(env_usize("HBAR_BENCH_MAX_SAMPLES", 20)),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no measurement)");
    } else {
        println!(
            "{label:<60} median {:>14.1} ns/iter ({} samples x {} iters)",
            bencher.median_ns_per_iter(),
            bencher.samples.len(),
            bencher.iters_per_sample,
        );
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("HBAR_BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
