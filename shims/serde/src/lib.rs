//! Offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! a minimal data model: [`Serialize`]/[`Deserialize`] convert types to and
//! from a self-describing [`Value`] tree, and the companion `serde_derive`
//! shim generates those impls for structs and enums using the same
//! externally-tagged layout real serde uses with `serde_json`. The
//! `serde_json` shim then renders/parses `Value` as JSON text, so profiles
//! and schedules round-trip exactly like they would upstream.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree, the intermediate form between Rust values and
/// JSON text. Object keys keep insertion order so field order in emitted
/// JSON matches declaration order, like serde's derived serializers.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the entries when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree, describing any mismatch.
    fn from_value(value: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}

/// Support for derived impls: fetch a named field of an object.
#[doc(hidden)]
pub fn __field<'a>(value: &'a Value, key: &str, context: &str) -> Result<&'a Value, String> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}` while reading {context}")),
        other => Err(format!("expected an object for {context}, found {other:?}")),
    }
}

fn int_from(value: &Value, context: &str) -> Result<i128, String> {
    match value {
        Value::Int(i) => Ok(*i as i128),
        Value::UInt(u) => Ok(*u as i128),
        other => Err(format!(
            "expected an integer for {context}, found {other:?}"
        )),
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, String> {
                let raw = int_from(value, stringify!($ty))?;
                <$ty>::try_from(raw).map_err(|_| format!("{raw} out of range for {}", stringify!($ty)))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, String> {
                let raw = int_from(value, stringify!($ty))?;
                <$ty>::try_from(raw).map_err(|_| format!("{raw} out of range for {}", stringify!($ty)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected a bool, found {other:?}")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, String> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected an array, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, String> {
                let items = value
                    .as_array()
                    .ok_or_else(|| format!("expected an array for a {}-tuple", $len))?;
                if items.len() != $len {
                    return Err(format!("expected {} elements, found {}", $len, items.len()));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A: 0);
impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&17u64.to_value()), Ok(17));
        assert_eq!(i64::from_value(&(-4i64).to_value()), Ok(-4));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let obj = Value::Object(vec![
            ("z".into(), Value::UInt(1)),
            ("a".into(), Value::UInt(2)),
        ]);
        let keys: Vec<&str> = obj
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
        assert_eq!(obj.get("a"), Some(&Value::UInt(2)));
    }
}
