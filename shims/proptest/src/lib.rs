//! Offline stand-in for `proptest`.
//!
//! Reproduces the subset of the proptest API the workspace's tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`Just`], [`any`], `prop::collection::vec`,
//! and the `prop_assert*`/`prop_assume!` macros. Sampling is deterministic
//! (seeded per test from the test's name), rejected cases via
//! `prop_assume!` are re-drawn with a bounded retry budget, and failures
//! panic with the offending assertion — there is no shrinking.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The RNG driving strategy sampling.
pub type TestRng = SmallRng;

/// Marker returned (via `Err`) when `prop_assume!` rejects a case.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name.
#[doc(hidden)]
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Indirection so the macro expansion avoids an immediately-invoked
/// closure literal (and the lints that pattern attracts).
#[doc(hidden)]
pub fn run_case(case: impl FnOnce() -> Result<(), Rejected>) -> Result<(), Rejected> {
    case()
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically-dispatched strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

trait StrategyObject {
    type Value;
    fn pick_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn pick_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.pick(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.0.pick_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn pick(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn pick(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + (rng.random::<u64>() % span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn pick(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + (rng.random::<u64>() % span) as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_signed_range {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn pick(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.random::<u64>() % span) as i64) as $ty
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random::<u32>()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.random::<usize>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random::<f64>()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.random::<u64>() % span.max(1)) as usize;
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod prelude {
    /// Mirrors proptest's `prelude::prop` module alias.
    pub use crate as prop;
    pub use crate::{any, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(::std::stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(64).max(1024);
                while __accepted < __config.cases {
                    ::std::assert!(
                        __attempts < __max_attempts,
                        "too many rejected cases in {}",
                        ::std::stringify!($name),
                    );
                    __attempts += 1;
                    let __outcome = $crate::run_case(|| {
                        $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)*
                        { $body }
                        ::std::result::Result::Ok(())
                    });
                    if __outcome.is_ok() {
                        __accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Asserts within a property; failure fails the test immediately.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_sampling() {
        let strat = (1usize..10, 0.0f64..1.0).prop_map(|(n, x)| (n * 2, x));
        let mut a = crate::rng_for("seed");
        let mut b = crate::rng_for("seed");
        for _ in 0..32 {
            assert_eq!(strat.pick(&mut a), strat.pick(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, assume, and assertions together.
        #[test]
        fn macro_end_to_end(
            n in 2usize..20,
            flags in prop::collection::vec(any::<bool>(), 1usize..8),
            scale in 0.5f64..2.0,
        ) {
            prop_assume!(n % 7 != 0);
            prop_assert!(n >= 2 && n < 20);
            prop_assert!(!flags.is_empty() && flags.len() < 8);
            prop_assert!(scale * 2.0 > scale, "scale {scale}");
            prop_assert_eq!(n + 1, 1 + n);
        }
    }
}
