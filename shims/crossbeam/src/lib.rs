//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny API surface it actually consumes:
//! [`utils::CachePadded`]. Semantics match upstream: the wrapper aligns its
//! contents to a cache-line boundary so adjacent atomics in an array do not
//! false-share.

pub mod utils {
    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line.
    ///
    /// 128 bytes covers the common cases: x86_64 prefetches cache-line
    /// pairs, and several aarch64 parts use 128-byte lines outright.
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads and aligns a value to the length of a cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let slot = CachePadded::new(AtomicU64::new(7));
        assert_eq!(core::mem::align_of_val(&slot), 128);
        slot.store(9, Ordering::Relaxed);
        assert_eq!(slot.load(Ordering::Relaxed), 9);
    }
}
