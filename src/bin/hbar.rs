//! `hbar` — command-line front end to the barrier-synthesis pipeline.
//!
//! ```text
//! hbar profile  --machine 8x2x4 --mapping rr --ranks 64 --out prof.json [--fast] [--seed N] [--exact-machine]
//!               [--clustered] [--probes N] [--workers HOST:PORT,...] [--stop-workers]
//!               [--compressed] [--mem-budget BYTES]
//! hbar profile-worker --listen HOST:PORT
//! hbar serve    --listen HOST:PORT [--shards N] [--cache-cap N] [--cache-bytes N] [--workers N]
//! hbar tune-client --connect HOST:PORT [--count N] [--requests N] [--seed N] [--zipf S]
//!               [--check all|sample|none] [--stats] [--shutdown]
//! hbar tune     --profile prof.json --out sched.json [--extended] [--exact-scoring] [--sparseness F]
//! hbar predict  --profile prof.json --schedule sched.json
//! hbar verify   --schedule sched.json
//! hbar simulate --profile prof.json --schedule sched.json [--reps N] [--seed N]
//! hbar codegen  --schedule sched.json --lang c|rust [--name NAME]
//! hbar heatmap  --profile prof.json [--matrix l|o]
//! hbar search   --profile prof.json --out sched.json [--max-stages N] [--max-expansions N]
//! ```
//!
//! `hbar serve` is the tuning daemon (sharded schedule cache, request
//! coalescing, bounded tuner pool); `hbar tune-client` is its load
//! generator and correctness checker — `--check all` asserts every
//! served schedule bit-identical to a local tune.
//!
//! Machines are `NODESxSOCKETSxCORES` (e.g. `8x2x4`) or the presets
//! `cluster-a` / `cluster-b`; mappings are `rr` (round-robin) or `block`.
//!
//! `--clustered` switches profiling to the decomposed sweep (one
//! representative benchmark per pair-feature equivalence class plus
//! validation probes, scattered into the full matrices); `--workers`
//! additionally shards the measurements across `hbar profile-worker`
//! TCP processes, falling back to local execution if the fleet dies.
//!
//! `--compressed` (implies `--clustered`) runs the out-of-core scatter:
//! class-grid tiles are staged under `--mem-budget` bytes (default
//! unbounded) and spilled to a scratch directory beyond it, so the
//! sweep itself runs in bounded resident memory even at P ≫ 4096. The
//! written profile is the standard dense document (expanded from the
//! class grid on save, bit-identical to the dense sweep).

use hbarrier::core::codegen::{c_source, compile_schedule, rust_source};
use hbarrier::core::compose::{tune_hybrid_for, TunerConfig};
use hbarrier::core::cost::{predict_barrier_cost, CostParams};
use hbarrier::core::schedule::BarrierSchedule;
use hbarrier::core::verify;
use hbarrier::prelude::*;
use hbarrier::simnet::barrier::measure_schedule;
use hbarrier::simnet::distrib::{
    serve_worker, shutdown_worker, FleetExecutor, FleetOptions, WorkerFault,
};
use hbarrier::simnet::profiling::{measure_profile, ProfilingConfig};
use hbarrier::simnet::sweep::{measure_profile_clustered, measure_profile_decomposed, SweepConfig};
use hbarrier::simnet::NoiseModel;
use hbarrier::topo::heatmap::render_labelled;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "profile" => cmd_profile(&flags),
        "profile-worker" => cmd_profile_worker(&flags),
        "serve" => cmd_serve(&flags),
        "tune-client" => cmd_tune_client(&flags),
        "tune" => cmd_tune(&flags),
        "predict" => cmd_predict(&flags),
        "verify" => cmd_verify(&flags),
        "simulate" => cmd_simulate(&flags),
        "codegen" => cmd_codegen(&flags),
        "heatmap" => cmd_heatmap(&flags),
        "search" => cmd_search(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: hbar <profile|profile-worker|serve|tune-client|tune|predict|verify|simulate|codegen|heatmap|search> [--flag value]...\n\
     run `hbar help` or see the crate docs for flags"
        .to_string()
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{a}`"));
        };
        // Boolean flags take no value; value flags consume the next arg.
        let boolean = matches!(
            name,
            "fast"
                | "extended"
                | "exact-scoring"
                | "exact-machine"
                | "clustered"
                | "compressed"
                | "stop-workers"
                | "stats"
                | "shutdown"
        );
        if boolean {
            flags.insert(name.to_string(), "true".to_string());
        } else {
            let v = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), v.clone());
        }
    }
    Ok(flags)
}

fn req<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_machine(spec: &str) -> Result<MachineSpec, String> {
    match spec {
        "cluster-a" => Ok(MachineSpec::dual_quad_cluster(8)),
        "cluster-b" => Ok(MachineSpec::dual_hex_cluster(10)),
        other => {
            let parts: Vec<usize> = other
                .split('x')
                .map(|v| v.parse().map_err(|_| format!("bad machine spec `{other}`")))
                .collect::<Result<_, _>>()?;
            if parts.len() != 3 || parts.contains(&0) {
                return Err(format!("machine spec must be NxSxC, got `{other}`"));
            }
            Ok(MachineSpec::new(parts[0], parts[1], parts[2]))
        }
    }
}

fn parse_mapping(spec: &str) -> Result<RankMapping, String> {
    match spec {
        "rr" | "round-robin" => Ok(RankMapping::RoundRobin),
        "block" => Ok(RankMapping::Block),
        other => Err(format!("mapping must be rr|block, got `{other}`")),
    }
}

fn load_profile(flags: &Flags) -> Result<TopologyProfile, String> {
    let path = req(flags, "profile")?;
    TopologyProfile::load(Path::new(path)).map_err(|e| format!("cannot load profile {path}: {e}"))
}

fn load_schedule(flags: &Flags) -> Result<BarrierSchedule, String> {
    let path = req(flags, "schedule")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse schedule {path}: {e}"))
}

fn cmd_profile(flags: &Flags) -> Result<(), String> {
    let machine = parse_machine(req(flags, "machine")?)?;
    let mapping = parse_mapping(flags.get("mapping").map(String::as_str).unwrap_or("rr"))?;
    let p: usize = match flags.get("ranks") {
        Some(v) => v.parse().map_err(|_| "bad --ranks".to_string())?,
        None => machine.total_cores(),
    };
    let out = req(flags, "out")?;
    // --workers implies the decomposed sweep: only classed descriptor
    // batches can be shipped over the wire. --compressed implies it
    // too: the class-grid scatter exists only for the classed sweep.
    let compressed = flags.contains_key("compressed");
    let clustered = flags.contains_key("clustered") || flags.contains_key("workers") || compressed;
    let mut summary = format!("{} pairwise estimates", p * (p - 1) / 2);
    let profile = if flags.contains_key("exact-machine") {
        // Closed-form noise-free profile (no benchmarking).
        TopologyProfile::from_ground_truth_for(&machine, &mapping, p)
    } else {
        let seed: u64 = flags
            .get("seed")
            .map(|v| v.parse().map_err(|_| "bad --seed".to_string()))
            .transpose()?
            .unwrap_or(1);
        let cfg = if flags.contains_key("fast") {
            ProfilingConfig::fast()
        } else {
            ProfilingConfig::default()
        };
        let noise = NoiseModel::realistic(seed);
        if clustered {
            let mut sweep_cfg = SweepConfig {
                profiling: cfg,
                ..SweepConfig::default()
            };
            if let Some(v) = flags.get("probes") {
                sweep_cfg.probes_per_class = v.parse().map_err(|_| "bad --probes".to_string())?;
            }
            let (profile, report) = if compressed {
                use hbarrier::simnet::{measure_profile_clustered_compressed, SpillConfig};
                if flags.contains_key("workers") {
                    return Err(
                        "--compressed runs locally; it cannot be combined with --workers"
                            .to_string(),
                    );
                }
                let dir =
                    std::env::temp_dir().join(format!("hbar-profile-spill-{}", std::process::id()));
                let spill = match flags.get("mem-budget") {
                    Some(v) => {
                        let bytes: usize = v
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or_else(|| "bad --mem-budget".to_string())?;
                        SpillConfig::budgeted(dir, bytes)
                    }
                    None => SpillConfig::in_memory(dir),
                };
                let (model, report, spilled) = measure_profile_clustered_compressed(
                    &machine, &mapping, p, noise, &sweep_cfg, &spill,
                )
                .map_err(|e| format!("compressed sweep failed: {e}"))?;
                println!(
                    "scatter: {} classes in a {} B grid ({} of {} tiles spilled, {} B to disk)",
                    model.classes(),
                    model.heap_bytes(),
                    spilled.spilled_tiles,
                    spilled.tiles,
                    spilled.spill_bytes
                );
                let profile = TopologyProfile {
                    machine: machine.clone(),
                    mapping,
                    p,
                    cost: model.to_dense(),
                };
                (profile, report)
            } else if let Some(list) = flags.get("workers") {
                let addrs: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if addrs.is_empty() {
                    return Err("--workers needs at least one HOST:PORT".to_string());
                }
                let mut fleet = FleetExecutor::for_sweep(
                    addrs.clone(),
                    machine.clone(),
                    noise,
                    sweep_cfg.profiling.clone(),
                    FleetOptions::default(),
                );
                let result = measure_profile_decomposed(
                    &machine, &mapping, p, noise, &sweep_cfg, &mut fleet,
                )
                .map_err(|e| format!("distributed sweep failed: {e}"))?;
                if flags.contains_key("stop-workers") {
                    for a in &addrs {
                        if let Err(e) = shutdown_worker(a.as_str()) {
                            eprintln!("warning: cannot stop worker {a}: {e}");
                        }
                    }
                }
                result
            } else {
                measure_profile_clustered(&machine, &mapping, p, noise, &sweep_cfg)
            };
            summary = format!(
                "{} classes, {} measurements, {:.0}x fewer than exhaustive",
                report.pair_classes + report.diag_classes,
                report.measurements,
                report.reduction_factor(p)
            );
            profile
        } else {
            measure_profile(&machine, &mapping, p, noise, &cfg)
        }
    };
    profile
        .save(Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "profiled {} ranks on {} ({summary}) -> {out}",
        p, machine.name
    );
    Ok(())
}

fn cmd_profile_worker(flags: &Flags) -> Result<(), String> {
    let listen = req(flags, "listen")?;
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    println!("profile worker listening on {local}");
    serve_worker(listener, WorkerFault::None).map_err(|e| format!("worker failed: {e}"))
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use hbarrier::serve::{serve, ServeConfig};
    let listen = req(flags, "listen")?;
    let mut cfg = ServeConfig::default();
    let parse_num = |flags: &Flags, name: &str, into: &mut usize| -> Result<(), String> {
        if let Some(v) = flags.get(name) {
            *into = v
                .parse()
                .ok()
                .filter(|&n: &usize| n > 0)
                .ok_or_else(|| format!("bad --{name}"))?;
        }
        Ok(())
    };
    parse_num(flags, "shards", &mut cfg.cache.shards)?;
    parse_num(flags, "cache-cap", &mut cfg.cache.capacity)?;
    parse_num(flags, "cache-bytes", &mut cfg.cache.bytes_budget)?;
    parse_num(flags, "workers", &mut cfg.workers)?;
    let listener =
        std::net::TcpListener::bind(listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    println!(
        "serve listening on {local} ({} shards, {} entries / {} bytes cache, {} workers)",
        cfg.cache.shards, cfg.cache.capacity, cfg.cache.bytes_budget, cfg.workers
    );
    // Scripted callers (CI smoke, tests) parse the bound address from a
    // pipe, so it must not sit in a block buffer.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    serve(&listener, &cfg).map_err(|e| format!("serve failed: {e}"))
}

fn cmd_tune_client(flags: &Flags) -> Result<(), String> {
    use hbarrier::core::compose::tune_hybrid_costs;
    use hbarrier::serve::workload::{synthetic_topologies, SplitMix64, ZipfSampler};
    use hbarrier::serve::{shutdown_server, TuneClient, TuneRequest};

    let addr = req(flags, "connect")?;
    let count: usize = flags
        .get("count")
        .map(|v| v.parse().map_err(|_| "bad --count".to_string()))
        .transpose()?
        .unwrap_or(64);
    let requests: usize = flags
        .get("requests")
        .map(|v| v.parse().map_err(|_| "bad --requests".to_string()))
        .transpose()?
        .unwrap_or(count * 4);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(1);
    let zipf_s: f64 = flags
        .get("zipf")
        .map(|v| v.parse().map_err(|_| "bad --zipf".to_string()))
        .transpose()?
        .unwrap_or(1.0);
    let check = flags.get("check").map(String::as_str).unwrap_or("sample");
    let check_every = match check {
        "all" => 1,
        "sample" => 16,
        "none" => 0,
        other => return Err(format!("--check must be all|sample|none, got `{other}`")),
    };

    let topologies = synthetic_topologies(count, seed);
    let zipf = ZipfSampler::new(count, zipf_s);
    let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let mut client =
        TuneClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut local_cache: HashMap<usize, String> = HashMap::new();
    let (mut hits, mut checked) = (0u64, 0u64);
    let started = std::time::Instant::now();
    for n in 0..requests {
        let k = zipf.sample(&mut rng);
        let req = TuneRequest::new(n as u64, topologies[k].clone());
        let resp = client
            .request(&req)
            .map_err(|e| format!("request {n} failed: {e}"))?;
        if resp.cache_hit {
            hits += 1;
        }
        if check_every > 0 && n % check_every == 0 {
            let expected = local_cache.entry(k).or_insert_with(|| {
                let members: Vec<usize> = (0..topologies[k].p()).collect();
                let tuned = tune_hybrid_costs(&topologies[k], &members, &req.tuner_config());
                serde_json::to_string(&tuned.schedule).expect("schedule serializes")
            });
            if resp.schedule_json != *expected {
                return Err(format!(
                    "PARITY FAILURE: request {n} (topology {k}) served a schedule \
                     that differs from the local tune"
                ));
            }
            checked += 1;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "{requests} requests over {count} topologies (zipf {zipf_s}): \
         {hits} hits ({:.1}% hit rate), {checked} parity-checked, \
         {:.0} req/s sync",
        100.0 * hits as f64 / requests.max(1) as f64,
        requests as f64 / elapsed.max(1e-9),
    );
    if flags.contains_key("stats") {
        let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
        println!(
            "server: {} requests, {} hits / {} misses ({} coalesced), {} tunes, \
             {} errors, cache {} entries / {} bytes / {} evictions",
            stats.requests,
            stats.hits,
            stats.misses,
            stats.coalesced,
            stats.tunes,
            stats.errors,
            stats.cache_entries,
            stats.cache_bytes,
            stats.cache_evictions
        );
    }
    client.drain().map_err(|e| format!("drain failed: {e}"))?;
    if flags.contains_key("shutdown") {
        shutdown_server(addr).map_err(|e| format!("shutdown failed: {e}"))?;
        println!("server shut down");
    }
    Ok(())
}

fn cmd_tune(flags: &Flags) -> Result<(), String> {
    let profile = load_profile(flags)?;
    let out = req(flags, "out")?;
    let mut cfg = if flags.contains_key("extended") {
        TunerConfig::extended()
    } else {
        TunerConfig::default()
    };
    if flags.contains_key("exact-scoring") {
        cfg.score_exact = true;
    }
    if let Some(s) = flags.get("sparseness") {
        cfg.sparseness = s.parse().map_err(|_| "bad --sparseness".to_string())?;
    }
    let members: Vec<usize> = (0..profile.p).collect();
    let tuned = tune_hybrid_for(&profile, &members, &cfg);
    let json = serde_json::to_string_pretty(&tuned.schedule).expect("schedule serializes");
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "tuned hybrid for {} ranks: {} stages, {} signals, root {:?}, predicted {:.1} us -> {out}",
        profile.p,
        tuned.schedule.len(),
        tuned.schedule.total_signals(),
        tuned.root_algorithm(),
        tuned.predicted_cost * 1e6
    );
    for c in &tuned.choices {
        println!(
            "  depth {}: {} over {} participants (score {:.1} us)",
            c.depth,
            c.algorithm,
            c.participants.len(),
            c.score * 1e6
        );
    }
    Ok(())
}

fn cmd_predict(flags: &Flags) -> Result<(), String> {
    let profile = load_profile(flags)?;
    let schedule = load_schedule(flags)?;
    if schedule.n() != profile.p {
        return Err(format!(
            "schedule covers {} ranks but profile has {}",
            schedule.n(),
            profile.p
        ));
    }
    let pred = predict_barrier_cost(&schedule, &profile.cost, &CostParams::default(), None);
    println!("predicted barrier cost: {:.3} us", pred.barrier_cost * 1e6);
    println!(
        "per-stage frontier (us): {:?}",
        pred.stage_frontier
            .iter()
            .map(|v| (v * 1e7).round() / 10.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn cmd_verify(flags: &Flags) -> Result<(), String> {
    let schedule = load_schedule(flags)?;
    if verify::is_barrier(&schedule) {
        println!(
            "valid barrier: {} ranks, {} stages, {} signals",
            schedule.n(),
            schedule.len(),
            schedule.total_signals()
        );
        Ok(())
    } else {
        let missing = verify::missing_knowledge(&schedule);
        Err(format!(
            "NOT a barrier: {} rank pairs never learn of each other (first few: {:?})",
            missing.len(),
            &missing[..missing.len().min(5)]
        ))
    }
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let profile = load_profile(flags)?;
    let schedule = load_schedule(flags)?;
    let reps: usize = flags
        .get("reps")
        .map(|v| v.parse().map_err(|_| "bad --reps".to_string()))
        .transpose()?
        .unwrap_or(25);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(1);
    let cfg = SimConfig {
        machine: profile.machine.clone(),
        mapping: profile.mapping.clone(),
        noise: NoiseModel::realistic(seed),
    };
    let mut world = SimWorld::new(cfg, profile.p);
    let t = measure_schedule(&mut world, &schedule, reps);
    println!(
        "measured barrier cost: {:.3} us (mean of {reps} executions)",
        t * 1e6
    );
    Ok(())
}

fn cmd_codegen(flags: &Flags) -> Result<(), String> {
    let schedule = load_schedule(flags)?;
    let name = flags
        .get("name")
        .map(String::as_str)
        .unwrap_or("generated_barrier");
    let programs = compile_schedule(&schedule).map_err(|e| format!("cannot compile: {e}"))?;
    let lang = flags.get("lang").map(String::as_str).unwrap_or("c");
    let src = match lang {
        "c" => c_source(name, &programs),
        "rust" => rust_source(name, &programs),
        other => return Err(format!("lang must be c|rust, got `{other}`")),
    }
    .map_err(|e| format!("cannot emit {lang}: {e}"))?;
    print!("{src}");
    Ok(())
}

fn cmd_search(flags: &Flags) -> Result<(), String> {
    use hbarrier::core::compose::{search_optimal_barrier, SearchConfig};
    let profile = load_profile(flags)?;
    let out = req(flags, "out")?;
    if profile.p > 6 {
        eprintln!(
            "warning: exhaustive search over {} ranks is exponential; expect long runtimes or truncation",
            profile.p
        );
    }
    let mut cfg = SearchConfig::default();
    if let Some(v) = flags.get("max-stages") {
        cfg.max_stages = v.parse().map_err(|_| "bad --max-stages".to_string())?;
    }
    if let Some(v) = flags.get("max-expansions") {
        cfg.max_expansions = v.parse().map_err(|_| "bad --max-expansions".to_string())?;
    }
    // Seed with the greedy hybrid so the search can only improve on it.
    let members: Vec<usize> = (0..profile.p).collect();
    let greedy = tune_hybrid_for(&profile, &members, &TunerConfig::default());
    let result = search_optimal_barrier(&profile.cost, &cfg, Some(&greedy.schedule));
    let json = serde_json::to_string_pretty(&result.schedule).expect("schedule serializes");
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "search {} after {} states: best {:.2} us ({} stages) vs greedy {:.2} us -> {out}",
        if result.complete {
            "complete"
        } else {
            "TRUNCATED"
        },
        result.expansions,
        result.cost * 1e6,
        result.schedule.len(),
        greedy.predicted_cost * 1e6
    );
    Ok(())
}

fn cmd_heatmap(flags: &Flags) -> Result<(), String> {
    let profile = load_profile(flags)?;
    let which = flags.get("matrix").map(String::as_str).unwrap_or("l");
    let (matrix, label) = match which {
        "l" => (&profile.cost.l, "L matrix (per-message latency)"),
        "o" => (&profile.cost.o, "O matrix (startup cost)"),
        other => return Err(format!("matrix must be l|o, got `{other}`")),
    };
    println!("{}", render_labelled(matrix, label));
    Ok(())
}
