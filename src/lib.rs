//! # hbarrier — topology-adaptive barrier synthesis
//!
//! Facade crate re-exporting the full pipeline of this workspace, a
//! from-scratch Rust reproduction of Meyer & Elster, *Optimized Barriers for
//! Heterogeneous Systems Using MPI* (IEEE IPDPS 2011).
//!
//! The pipeline mirrors the paper's two decoupled models:
//!
//! 1. **Topological model** ([`topo`], [`simnet`]): profile every pair of
//!    processes on a (simulated) heterogeneous cluster, extracting the `O`
//!    (startup overhead) and `L` (per-message latency) matrices by
//!    least-squares regression over ping-pong benchmarks.
//! 2. **Algorithmic model** ([`core`]): encode barriers as sequences of
//!    boolean incidence matrices, verify them by knowledge closure, predict
//!    their cost by critical-path analysis against the profile, and greedily
//!    compose a specialized *hybrid* barrier over an SSS cluster tree.
//!
//! Compiled schedules ([`core::codegen::RankProgram`]) execute on either the
//! discrete-event simulator ([`simnet`]) or real OS threads ([`threadrun`]),
//! and are audited before anything runs by the static analyzer ([`analyze`]):
//! schedule lints, deadlock detection over compiled programs, and round-trip
//! verification of the emitted C/Rust sources.
//!
//! ```
//! use hbarrier::prelude::*;
//!
//! // A 2-node, dual-socket, 2-cores-per-socket toy cluster.
//! let machine = MachineSpec::new(2, 2, 2);
//! let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
//!
//! // Tune a hybrid barrier for all 8 ranks and check it synchronizes.
//! let tuned = tune_hybrid(&profile, &TunerConfig::default());
//! assert!(tuned.schedule.is_barrier());
//! ```

pub use hbar_analyze as analyze;
pub use hbar_core as core;
pub use hbar_matrix as matrix;
pub use hbar_serve as serve;
pub use hbar_simnet as simnet;
pub use hbar_threadrun as threadrun;
pub use hbar_topo as topo;

/// Commonly used items for downstream code and the examples.
pub mod prelude {
    pub use hbar_analyze::{analyze_schedule, AnalysisReport, AnalyzeConfig};
    pub use hbar_core::algorithms::{Algorithm, RankSet};
    pub use hbar_core::codegen::{compile_schedule, CodegenError, RankProgram};
    pub use hbar_core::compose::{tune_hybrid, TunedBarrier, TunerConfig};
    pub use hbar_core::cost::{predict_barrier_cost, CostParams};
    pub use hbar_core::schedule::BarrierSchedule;
    pub use hbar_matrix::{BoolMatrix, DenseMatrix};
    pub use hbar_simnet::world::{SimConfig, SimWorld};
    pub use hbar_topo::machine::MachineSpec;
    pub use hbar_topo::mapping::RankMapping;
    pub use hbar_topo::profile::TopologyProfile;
}
